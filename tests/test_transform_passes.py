"""Pass-manager core: registry, instrumentation, verification, and the
pass-level property suite (semantics preservation + idempotence) across
every registry model."""

import json

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.models import build_model, list_models
from repro.plan.fingerprint import graph_fingerprint
from repro.runtime.numerical import execute
from repro.runtime.verify import random_feeds
from repro.transform import cleanup, fuse
from repro.transform.base import TransformError, rename_output
from repro.transform.passes import (
    APPLY,
    CLEANUP,
    FUSE,
    PREPARE,
    PREPARE_PASSES,
    FunctionPass,
    PassContext,
    PassError,
    PassManager,
    PassPipeline,
    PassVerificationError,
    create_pass,
    pass_info,
    register_pass,
    registered_passes,
    run_pass,
    run_pipeline,
)

BUILTIN_PASSES = {
    "fold_constants", "eliminate_dead_nodes", "fold_batchnorm",
    "fuse_activations", "optimize_memory", "apply_decisions",
    "mddp_split", "pipeline_chain",
}


class TestRegistry:
    def test_builtins_registered(self):
        names = {info.name for info in registered_passes()}
        assert BUILTIN_PASSES <= names

    def test_metadata_flags(self):
        assert pass_info("fold_constants").idempotent
        assert pass_info("optimize_memory").idempotent
        assert pass_info("apply_decisions").requires == ("decisions",)
        assert pass_info("mddp_split").requires == ("node",)
        for name in BUILTIN_PASSES:
            assert pass_info(name).description

    def test_unknown_pass(self):
        with pytest.raises(PassError, match="unknown pass"):
            pass_info("nope")
        with pytest.raises(PassError, match="unknown pass"):
            create_pass("nope")

    def test_duplicate_name_rejected(self):
        with pytest.raises(PassError, match="duplicate"):
            register_pass("fold_constants")(lambda g: g.clone())

    def test_create_pass_satisfies_protocol(self):
        p = create_pass("fold_constants")
        assert p.name == "fold_constants"
        assert callable(p.run)

    def test_default_pipelines(self):
        assert tuple(CLEANUP) + tuple(FUSE) == tuple(PREPARE)
        assert PREPARE_PASSES == tuple(PREPARE.passes)
        assert tuple(APPLY) == ("apply_decisions", "optimize_memory")


class TestFunctionPass:
    def test_graph_only_signature(self, small_conv_graph):
        p = FunctionPass("id", lambda g: g.clone())
        out = p.run(small_conv_graph, PassContext())
        assert out is not small_conv_graph

    def test_graph_ctx_signature(self, small_conv_graph):
        seen = {}

        def fn(g, ctx):
            seen["opt"] = ctx.option("k")
            return g.clone()

        FunctionPass("id", fn).run(small_conv_graph,
                                   PassContext(options={"k": 7}))
        assert seen["opt"] == 7


class TestPassContext:
    def test_require_option(self):
        ctx = PassContext(options={"a": 1})
        assert ctx.require_option("p", "a") == 1
        with pytest.raises(PassError, match="requires"):
            ctx.require_option("p", "missing")

    def test_with_options_shares_diagnostics(self):
        ctx = PassContext(options={"a": 1})
        view = ctx.with_options({"b": 2})
        assert view.option("a") == 1 and view.option("b") == 2
        assert ctx.option("b") is None
        view.log("hello")
        assert ctx.diagnostics == ["hello"]


class TestManagerInstrumentation:
    def test_records_per_pass(self):
        graph = build_model("toy")
        mgr = PassManager()
        mgr.run(PREPARE, graph)
        assert [r.name for r in mgr.records] == list(PREPARE_PASSES)
        for r in mgr.records:
            assert r.wall_ms >= 0.0
            assert r.nodes_before > 0 and r.nodes_after > 0
        # fusion shrinks the toy model, so at least one record changed
        assert any(r.changed for r in mgr.records)

    def test_record_dicts_json_round_trip(self):
        mgr = PassManager()
        mgr.run(CLEANUP, build_model("toy"))
        dicts = mgr.record_dicts()
        assert json.loads(json.dumps(dicts)) == dicts
        assert {d["name"] for d in dicts} == set(CLEANUP.passes)

    def test_pipeline_equals_functional_api(self):
        graph = build_model("toy")
        via_pipeline = PassManager().run(PREPARE, graph)
        via_functions = fuse(cleanup(graph))
        assert (graph_fingerprint(via_pipeline)
                == graph_fingerprint(via_functions))

    def test_bound_pass_options(self, small_conv_graph):
        mgr = PassManager()
        out = mgr.run([("mddp_split", {"node": "c0", "ratio_gpu": 0.5})],
                      small_conv_graph)
        assert any(n.op_type == "Concat" for n in out.nodes)
        assert mgr.records[0].nodes_after > mgr.records[0].nodes_before

    def test_run_pass_helper_with_options(self, pointwise_chain_graph):
        out = run_pass("pipeline_chain", pointwise_chain_graph,
                       chain=("pw1", "act1", "dw1"), stages=2)
        assert any(n.op_type == "Slice" for n in out.nodes)

    def test_missing_required_option(self, small_conv_graph):
        with pytest.raises(PassError, match="requires"):
            run_pass("mddp_split", small_conv_graph)

    def test_run_pipeline_accepts_custom_pipeline(self, small_conv_graph):
        pipe = PassPipeline("mine", ("fold_constants",))
        out = run_pipeline(pipe, small_conv_graph)
        assert out is not small_conv_graph

    def test_bad_spec_rejected(self, small_conv_graph):
        with pytest.raises(PassError, match="spec"):
            PassManager().run([42], small_conv_graph)


class TestManagerGuards:
    def test_pass_returning_input_rejected(self, small_conv_graph):
        identity = FunctionPass("identity", lambda g: g)
        with pytest.raises(PassError, match="returned its input"):
            PassManager().run([identity], small_conv_graph)

    def test_pass_returning_non_graph_rejected(self, small_conv_graph):
        bad = FunctionPass("bad", lambda g: None)
        with pytest.raises(PassError, match="not a Graph"):
            PassManager().run([bad], small_conv_graph)

    def test_purity_check_catches_mutation(self, small_conv_graph):
        def mutate(g):
            clone = g.clone()
            g.node("c0").attrs["elided"] = True  # mutates the input!
            return clone

        mgr = PassManager(check_purity=True)
        with pytest.raises(PassError, match="clone discipline"):
            mgr.run([FunctionPass("mutator", mutate)], small_conv_graph)


class TestVerifier:
    def test_verified_flag_set(self, small_conv_graph):
        mgr = PassManager(verify=True)
        mgr.run(PREPARE, small_conv_graph)
        assert all(r.verified for r in mgr.records)
        assert any("numeric max |error|" in note
                   for r in mgr.records for note in r.notes)

    def test_catches_semantic_corruption(self, small_conv_graph):
        def corrupt(g):
            out = g.clone()
            name = out.node("c0").inputs[1]  # conv weight
            out.initializers[name] = out.initializers[name] * 3.0
            return out

        mgr = PassManager(verify=True)
        with pytest.raises(PassVerificationError, match="semantics"):
            mgr.run([FunctionPass("corrupt", corrupt)], small_conv_graph)

    def test_catches_interface_change(self, small_conv_graph):
        def drop_output(g):
            out = g.clone()
            out.outputs[:] = []
            return out

        mgr = PassManager(verify=True, verify_numeric=False)
        with pytest.raises(PassVerificationError, match="interface"):
            mgr.run([FunctionPass("drop", drop_output)], small_conv_graph)

    def test_catches_invalid_graph(self, small_conv_graph):
        def orphan(g):
            out = g.clone()
            out.node("c0").inputs[0] = "no_such_tensor"
            out.touch()
            return out

        mgr = PassManager(verify=True, verify_numeric=False)
        with pytest.raises(PassVerificationError, match="invalid graph"):
            mgr.run([FunctionPass("orphan", orphan)], small_conv_graph)

    def test_verify_off_by_default(self, small_conv_graph):
        mgr = PassManager()
        mgr.run(PREPARE, small_conv_graph)
        assert not any(r.verified for r in mgr.records)


class TestDumpIR:
    def test_snapshots_after_each_pass(self, tmp_path, small_conv_graph):
        from repro.graph.serialize import load_graph

        mgr = PassManager(dump_dir=tmp_path)
        out = mgr.run(PREPARE, small_conv_graph)
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [f"{i:02d}_{name}.json"
                         for i, name in enumerate(PREPARE_PASSES)]
        final = load_graph(tmp_path / files[-1])
        assert graph_fingerprint(final) == graph_fingerprint(out)


class TestRenameOutput:
    def test_renames_and_touches(self, small_conv_graph):
        g = small_conv_graph.clone()
        node = g.node("c0")
        old = node.outputs[0]
        version = g.version
        rename_output(g, node, old, "renamed")
        assert node.outputs == ["renamed"]
        assert g.version > version

    def test_unknown_output_rejected(self, small_conv_graph):
        g = small_conv_graph.clone()
        with pytest.raises(TransformError, match="does not produce"):
            rename_output(g, g.node("c0"), "nope", "renamed")


# ----------------------------------------------------------------------
# Property suite: every standalone registered pass preserves semantics
# and honours its idempotence claim, across all registry models.
# ----------------------------------------------------------------------
PROPERTY_PASSES = tuple(PREPARE_PASSES) + ("optimize_memory",)


@pytest.mark.parametrize("model", list_models())
def test_passes_preserve_semantics_and_idempotence(model):
    graph = build_model(model)
    feeds = random_feeds(graph, seed=0)
    ref = execute(graph, feeds)
    current = graph
    for name in PROPERTY_PASSES:
        info = pass_info(name)
        assert info.preserves_semantics
        nxt = run_pass(name, current)
        if info.idempotent:
            again = run_pass(name, nxt)
            assert graph_fingerprint(again) == graph_fingerprint(nxt), (
                f"{name} is not idempotent on {model}")
        out = execute(nxt, feeds)
        for k in ref:
            np.testing.assert_allclose(
                ref[k], out[k], rtol=5e-3, atol=5e-3,
                err_msg=f"{name} changed semantics of {model}:{k}")
        current = nxt


def test_apply_decisions_duck_types_dict_decisions(small_conv_graph):
    out = run_pass("apply_decisions", small_conv_graph, decisions=[
        {"mode": "split", "nodes": ["c0"], "ratio_gpu": 0.5},
        {"mode": "gpu", "nodes": ["r0"]},
    ])
    assert any(n.op_type == "Concat" for n in out.nodes)
    assert out.node("r0").device == "gpu"


def test_apply_decisions_empty_still_clones(small_conv_graph):
    out = run_pass("apply_decisions", small_conv_graph, decisions=[])
    assert out is not small_conv_graph
    assert graph_fingerprint(out) == graph_fingerprint(small_conv_graph)


def test_apply_decisions_unknown_mode(small_conv_graph):
    with pytest.raises(ValueError, match="unknown decision mode"):
        run_pass("apply_decisions", small_conv_graph,
                 decisions=[{"mode": "warp", "nodes": ["c0"]}])


def test_custom_registered_pass_gets_manager_services(tmp_path):
    """The advertised extension path: one register_pass call buys
    instrumentation and verification."""
    b = GraphBuilder(seed=9)
    x = b.input("x", (1, 8, 8, 4))
    b.output(b.conv(x, cout=4, kernel=1, name="c"))
    graph = b.build()

    name = "test_only_identity"
    try:
        register_pass(name, description="clone-only test pass",
                      idempotent=True)(lambda g: g.clone())
        mgr = PassManager(verify=True, dump_dir=tmp_path)
        out = mgr.run([name], graph)
        assert graph_fingerprint(out) == graph_fingerprint(graph)
        assert mgr.records[0].verified
        assert (tmp_path / f"00_{name}.json").exists()
    finally:
        from repro.transform import passes as passes_mod
        passes_mod._REGISTRY.pop(name, None)
