"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_conv_graph():
    """A single 3x3 conv with ReLU on a 14x14x8 input."""
    b = GraphBuilder("small", seed=5)
    x = b.input("x", (1, 14, 14, 8))
    y = b.conv(x, cout=16, kernel=3, name="c0")
    y = b.relu(y, name="r0")
    b.output(y)
    return b.build()


@pytest.fixture
def pointwise_chain_graph():
    """1x1 -> relu -> dw -> relu -> 1x1 chain (pipelining testbed)."""
    b = GraphBuilder("chain", seed=6)
    x = b.input("x", (1, 14, 14, 8))
    y = b.conv(x, cout=16, kernel=1, name="pw1")
    y = b.relu(y, name="act1")
    y = b.dwconv(y, kernel=3, name="dw1")
    y = b.relu(y, name="act2")
    y = b.conv(y, cout=8, kernel=1, name="pw2")
    b.output(y)
    return b.build()


@pytest.fixture
def fc_graph():
    """A single fully-connected layer, batch 1."""
    b = GraphBuilder("fc", seed=7)
    x = b.input("x", (1, 64))
    y = b.gemm(x, 48, name="fc0")
    b.output(y)
    return b.build()


@pytest.fixture(scope="session")
def toy_plan():
    """The toy model compiled once (PIMFlow mechanism) for serving tests."""
    from repro.models import build_model
    from repro.pimflow import Compiler, PimFlowConfig

    compiler = Compiler(PimFlowConfig(mechanism="pimflow"))
    return compiler.build_plan(build_model("toy"), model_name="toy")


@pytest.fixture(scope="session")
def toy_gpu_plan():
    """The toy model compiled once on the GPU baseline (serving A/B)."""
    from repro.models import build_model
    from repro.pimflow import Compiler, PimFlowConfig

    compiler = Compiler(PimFlowConfig(mechanism="gpu"))
    return compiler.build_plan(build_model("toy"), model_name="toy")
