"""Tests for the pipelining pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.runtime.numerical import execute
from repro.transform.base import TransformError, UnsplittableError
from repro.transform.pipeline import pipeline_chain


def _chain_graph(h=14, cin=8, hidden=16, dw_kernel=3, dw_stride=1, seed=3):
    b = GraphBuilder("p", seed=seed)
    x = b.input("x", (1, h, h, cin))
    y = b.conv(x, cout=hidden, kernel=1, name="pw1")
    y = b.relu(y, name="act1")
    y = b.dwconv(y, kernel=dw_kernel, stride=dw_stride, name="dw1")
    y = b.relu(y, name="act2")
    y = b.conv(y, cout=cin, kernel=1, name="pw2")
    b.output(y)
    return b.build()


FULL_CHAIN = ("pw1", "act1", "dw1", "act2", "pw2")


class TestEquivalence:
    @pytest.mark.parametrize("chain", [
        ("pw1", "act1", "dw1"),
        ("dw1", "act2", "pw2"),
        FULL_CHAIN,
    ])
    @pytest.mark.parametrize("stages", [2, 3, 4])
    def test_chain_equivalence(self, rng, chain, stages):
        g = _chain_graph()
        feed = {"x": rng.standard_normal((1, 14, 14, 8))}
        ref = execute(g, feed)
        g2 = pipeline_chain(g, chain, num_stages=stages)
        g2.validate()
        out = execute(g2, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

    def test_strided_dw_equivalence(self, rng):
        g = _chain_graph(dw_stride=2)
        feed = {"x": rng.standard_normal((1, 14, 14, 8))}
        ref = execute(g, feed)
        g2 = pipeline_chain(g, FULL_CHAIN, num_stages=2)
        out = execute(g2, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

    def test_5x5_dw_equivalence(self, rng):
        g = _chain_graph(dw_kernel=5)
        feed = {"x": rng.standard_normal((1, 14, 14, 8))}
        ref = execute(g, feed)
        g2 = pipeline_chain(g, FULL_CHAIN, num_stages=2)
        out = execute(g2, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(
        h=st.integers(8, 24),
        dw_kernel=st.sampled_from([3, 5]),
        dw_stride=st.sampled_from([1, 2]),
        stages=st.integers(2, 4),
    )
    def test_property_equivalence(self, h, dw_kernel, dw_stride, stages):
        g = _chain_graph(h=h, dw_kernel=dw_kernel, dw_stride=dw_stride)
        rng = np.random.default_rng(0)
        feed = {"x": rng.standard_normal((1, h, h, 8))}
        ref = execute(g, feed)
        try:
            g2 = pipeline_chain(g, FULL_CHAIN, num_stages=stages)
        except UnsplittableError:
            return  # small maps with many stages legitimately fail
        g2.validate()
        out = execute(g2, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)


class TestStructure:
    def test_devices_follow_paper_rule(self):
        g2 = pipeline_chain(_chain_graph(), FULL_CHAIN, num_stages=2)
        for s in (0, 1):
            assert g2.node(f"pw1__pl_{s}").device == "pim"
            assert g2.node(f"dw1__pl_{s}").device == "gpu"
            assert g2.node(f"pw2__pl_{s}").device == "pim"
            assert g2.node(f"act1__pl_{s}").device == "gpu"

    def test_device_override(self):
        g2 = pipeline_chain(_chain_graph(), FULL_CHAIN, num_stages=2,
                            devices={"pw1": "gpu"})
        assert g2.node("pw1__pl_0").device == "gpu"

    def test_pipeline_metadata(self):
        g2 = pipeline_chain(_chain_graph(), FULL_CHAIN, num_stages=3,
                            group_id="grp")
        stages = {g2.node(f"dw1__pl_{s}").attr("pipeline_stage")
                  for s in range(3)}
        assert stages == {0, 1, 2}
        assert g2.node("dw1__pl_0").attr("pipeline_group") == "grp"

    def test_stage_dependency_structure(self):
        """Stage s of node j must not depend on stage s+1 of node j-1."""
        g2 = pipeline_chain(_chain_graph(), ("pw1", "act1", "dw1"), num_stages=2)
        # dw1 stage 0 consumes only pw1/act1 stage 0 output.  Verify via
        # reachability: dw1__pl_0's transitive inputs exclude any
        # stage-1 piece.
        assert {"dw1__pl_0", "pw1__pl_1"} <= {n.name for n in g2.toposort()}
        def transitive_inputs(graph, node_name):
            seen = set()
            stack = [graph.node(node_name)]
            while stack:
                n = stack.pop()
                for t in n.inputs:
                    p = graph.producer(t)
                    if p and p.name not in seen:
                        seen.add(p.name)
                        stack.append(p)
            return seen
        deps = transitive_inputs(g2, "dw1__pl_0")
        assert not any("__pl_1" in d for d in deps)

    def test_output_name_preserved(self):
        g = _chain_graph()
        out_name = g.node("pw2").outputs[0]
        g2 = pipeline_chain(g, FULL_CHAIN)
        assert out_name in [t for n in g2.nodes for t in n.outputs]
        assert g2.outputs == g.outputs

    def test_original_untouched(self):
        g = _chain_graph()
        n_before = len(g)
        pipeline_chain(g, FULL_CHAIN)
        assert len(g) == n_before


class TestErrors:
    def test_single_stage_rejected(self):
        with pytest.raises(ValueError):
            pipeline_chain(_chain_graph(), FULL_CHAIN, num_stages=1)

    def test_too_many_stages_rejected(self):
        g = _chain_graph(h=4)
        with pytest.raises(UnsplittableError):
            pipeline_chain(g, FULL_CHAIN, num_stages=4)

    def test_branching_chain_rejected(self, rng):
        b = GraphBuilder(seed=9)
        x = b.input("x", (1, 8, 8, 4))
        y = b.conv(x, cout=4, kernel=1, name="c1")
        z = b.relu(y, name="r1")
        w = b.sigmoid(y, name="s1")  # second consumer of c1's output
        b.output(b.add(z, w))
        g = b.build()
        with pytest.raises(TransformError):
            pipeline_chain(g, ("c1", "r1"))

    def test_non_chain_rejected(self):
        g = _chain_graph()
        with pytest.raises(TransformError):
            pipeline_chain(g, ("pw1", "dw1"))  # skips act1

    def test_non_pipelinable_op_rejected(self, rng):
        b = GraphBuilder(seed=10)
        x = b.input("x", (1, 8, 8, 4))
        y = b.conv(x, cout=4, kernel=1, name="c1")
        y = b.maxpool(y, kernel=2, stride=2, name="mp")
        b.output(y)
        g = b.build()
        with pytest.raises(TransformError):
            pipeline_chain(g, ("c1", "mp"))
