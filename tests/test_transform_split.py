"""Tests for the MD-DP multi-device parallelization pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.runtime.numerical import execute
from repro.transform.base import TransformError, UnsplittableError, conv_h_window
from repro.transform.split import apply_mddp, split_rows


def _conv_graph(h=14, w=14, cin=8, cout=16, kernel=3, stride=1, pad=None,
                batch=1, seed=1):
    b = GraphBuilder("t", seed=seed)
    x = b.input("x", (batch, h, w, cin))
    y = b.conv(x, cout=cout, kernel=kernel, stride=stride, pad=pad, name="c0")
    b.output(y)
    return b.build()


class TestConvHWindow:
    def test_full_range_is_identity(self):
        in_start, in_end, pt, pb = conv_h_window(0, 14, 3, 1, 1, 14)
        assert (in_start, in_end, pt, pb) == (0, 14, 1, 1)

    def test_top_piece_keeps_top_pad(self):
        in_start, in_end, pt, pb = conv_h_window(0, 7, 3, 1, 1, 14)
        assert in_start == 0 and pt == 1 and pb == 0
        assert in_end == 8  # one halo row

    def test_bottom_piece_keeps_bottom_pad(self):
        in_start, in_end, pt, pb = conv_h_window(7, 14, 3, 1, 1, 14)
        assert in_start == 6 and pt == 0 and pb == 1
        assert in_end == 14

    def test_strided_window(self):
        in_start, in_end, pt, pb = conv_h_window(2, 4, 3, 2, 1, 14)
        assert in_start == 3
        assert in_end == 8

    def test_invalid_range_rejected(self):
        with pytest.raises(UnsplittableError):
            conv_h_window(5, 5, 3, 1, 1, 14)

    def test_pure_padding_rejected(self):
        # Kernel bigger than padded region coverage at extreme offsets.
        with pytest.raises(UnsplittableError):
            conv_h_window(0, 1, 1, 1, 5, 4)


class TestSplitRows:
    def test_rounding(self):
        assert split_rows(14, 0.5) == 7
        assert split_rows(14, 0.0) == 0
        assert split_rows(14, 1.0) == 14

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            split_rows(10, 1.5)


class TestConvSplitEquivalence:
    @pytest.mark.parametrize("kernel,stride,pad", [
        (1, 1, 0), (3, 1, 1), (3, 2, 1), (5, 1, 2), (5, 2, 2), (7, 2, 3),
        (3, 1, 0), (2, 1, 0), (2, 2, 0),
    ])
    @pytest.mark.parametrize("ratio", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_equivalence(self, rng, kernel, stride, pad, ratio):
        g = _conv_graph(kernel=kernel, stride=stride, pad=pad)
        feed = {"x": rng.standard_normal((1, 14, 14, 8))}
        ref = execute(g, feed)
        g2 = apply_mddp(g, "c0", ratio)
        g2.validate()
        out = execute(g2, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

    @settings(max_examples=30, deadline=None)
    @given(
        h=st.integers(5, 20),
        kernel=st.sampled_from([1, 2, 3, 5]),
        stride=st.sampled_from([1, 2]),
        pad=st.integers(0, 2),
        ratio=st.floats(0.05, 0.95),
    )
    def test_property_equivalence(self, h, kernel, stride, pad, ratio):
        if h + 2 * pad < kernel:
            return
        g = _conv_graph(h=h, w=max(kernel, 5), kernel=kernel, stride=stride,
                        pad=pad)
        rng = np.random.default_rng(0)
        feed = {"x": rng.standard_normal(g.tensors["x"].shape)}
        ref = execute(g, feed)
        try:
            g2 = apply_mddp(g, "c0", ratio)
        except TransformError:
            return  # halo can make a piece unrealizable; that's allowed
        g2.validate()
        out = execute(g2, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

    def test_batch_greater_than_one(self, rng):
        g = _conv_graph(batch=2)
        feed = {"x": rng.standard_normal((2, 14, 14, 8))}
        ref = execute(g, feed)
        out = execute(apply_mddp(g, "c0", 0.5), feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)


class TestBatchAxisSplit:
    def test_equivalence(self, rng):
        g = _conv_graph(batch=4, kernel=3, stride=2)
        feed = {"x": rng.standard_normal((4, 14, 14, 8))}
        ref = execute(g, feed)
        g2 = apply_mddp(g, "c0", 0.5, axis="batch")
        g2.validate()
        out = execute(g2, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

    def test_no_halo_overlap(self):
        g2 = apply_mddp(_conv_graph(batch=4), "c0", 0.5, axis="batch")
        sa = g2.node("c0__slice_gpu")
        sb = g2.node("c0__slice_pim")
        # Batch slices partition exactly: no duplicated input rows.
        assert sa.attr("end") == sb.attr("start")
        assert sa.attr("axis") == 0

    def test_rejects_batch_one(self):
        with pytest.raises(TransformError):
            apply_mddp(_conv_graph(batch=1), "c0", 0.5, axis="batch")

    def test_rejects_unknown_axis(self):
        with pytest.raises(ValueError):
            apply_mddp(_conv_graph(), "c0", 0.5, axis="w")

    def test_devices_assigned(self):
        g2 = apply_mddp(_conv_graph(batch=2), "c0", 0.5, axis="batch")
        assert g2.node("c0__gpu").device == "gpu"
        assert g2.node("c0__pim").device == "pim"


class TestSplitStructure:
    def test_devices_assigned(self):
        g2 = apply_mddp(_conv_graph(), "c0", 0.5)
        assert g2.node("c0__gpu").device == "gpu"
        assert g2.node("c0__pim").device == "pim"

    def test_full_offload_sets_device_only(self):
        g2 = apply_mddp(_conv_graph(), "c0", 0.0)
        assert len(g2) == 1
        assert g2.node("c0").device == "pim"

    def test_full_gpu_sets_device_only(self):
        g2 = apply_mddp(_conv_graph(), "c0", 1.0)
        assert len(g2) == 1
        assert g2.node("c0").device == "gpu"

    def test_original_graph_untouched(self):
        g = _conv_graph()
        apply_mddp(g, "c0", 0.5)
        assert len(g) == 1
        assert g.node("c0").device == "auto"

    def test_output_tensor_name_preserved(self):
        g = _conv_graph()
        out_name = g.node("c0").outputs[0]
        g2 = apply_mddp(g, "c0", 0.5)
        assert g2.node("c0__concat").outputs == [out_name]

    def test_non_candidate_rejected(self):
        b = GraphBuilder()
        x = b.input("x", (1, 8, 8, 4))
        b.output(b.relu(x, name="r"))
        g = b.build()
        with pytest.raises(TransformError):
            apply_mddp(g, "r", 0.5)

    def test_depthwise_rejected(self):
        b = GraphBuilder()
        x = b.input("x", (1, 8, 8, 4))
        b.output(b.dwconv(x, name="dw"))
        g = b.build()
        with pytest.raises(TransformError):
            apply_mddp(g, "dw", 0.5)


class TestGemmSplit:
    def test_equivalence(self, fc_graph, rng):
        feed = {"x": rng.standard_normal((1, 64))}
        ref = execute(fc_graph, feed)
        for ratio in (0.25, 0.5, 0.75):
            g2 = apply_mddp(fc_graph, "fc0", ratio)
            g2.validate()
            out = execute(g2, feed)
            for k in ref:
                np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

    def test_weights_pre_split(self, fc_graph):
        g2 = apply_mddp(fc_graph, "fc0", 0.5)
        gpu_w = g2.node("fc0__gpu").inputs[1]
        pim_w = g2.node("fc0__pim").inputs[1]
        assert g2.initializers[gpu_w].shape == (64, 24)
        assert g2.initializers[pim_w].shape == (64, 24)
        # No runtime Slice needed for the constant operand.
        assert all(n.op_type != "Slice" for n in g2.nodes)

    def test_non_constant_weight_rejected(self, rng):
        b = GraphBuilder()
        a = b.input("a", (1, 8))
        w = b.input("w", (8, 4))
        b.output(b.matmul(a, w, name="mm"))
        g = b.build()
        with pytest.raises(TransformError):
            apply_mddp(g, "mm", 0.5)

    def test_fused_activation_preserved_on_parts(self, rng):
        b = GraphBuilder(seed=8)
        x = b.input("x", (1, 10, 10, 4))
        y = b.conv(x, cout=8, kernel=3, name="c")
        b.output(y)
        g = b.build()
        g.node("c").attrs["activation"] = "relu"
        feed = {"x": rng.standard_normal((1, 10, 10, 4))}
        ref = execute(g, feed)
        out = execute(apply_mddp(g, "c", 0.5), feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)
