"""Unit tests for the arena buffer planner (``runtime/bufferplan.py``).

The planner's contracts, independent of the executor that consumes it:
lifetime-disjoint arena packing, aligned offsets, rectangle containment,
elision counters that mirror the memory-layout optimizer's markings, and
pinning of margin-bearing roots (whose zero borders must survive reuse).
"""

import json

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.ops import is_pim_candidate
from repro.models import build_model
from repro.runtime.bufferplan import ARENA_ALIGN, plan_buffers
from repro.transform.memopt import optimize_memory
from repro.transform.split import apply_mddp


def _mddp_split(graph, ratio=0.5):
    g = graph
    for node in graph.toposort():
        shapes = [graph.tensors[t].shape for t in node.inputs]
        if is_pim_candidate(node, shapes):
            g = apply_mddp(g, node.name, ratio)
    return optimize_memory(g)


@pytest.fixture(scope="module")
def toy():
    return build_model("toy")


@pytest.fixture(scope="module")
def split_toy(toy):
    return _mddp_split(toy)


class TestArenaLayout:
    def _assert_packing(self, plan):
        arena_end = plan.arena_elements
        for root in plan.roots.values():
            assert root.arena_offset >= 0
            assert root.arena_offset % ARENA_ALIGN == 0
            assert root.arena_offset + root.elements <= arena_end

    def _assert_no_live_overlap(self, plan):
        roots = list(plan.roots.values())
        for i, a in enumerate(roots):
            for b in roots[i + 1:]:
                # Pinned roots hold their bytes forever; otherwise two
                # roots may share bytes only if their lifetimes are
                # disjoint.
                overlap_life = (a.pinned or b.pinned
                                or (a.birth <= b.death and b.birth <= a.death))
                if not overlap_life:
                    continue
                a_end = a.arena_offset + a.elements
                b_end = b.arena_offset + b.elements
                assert a_end <= b.arena_offset or b_end <= a.arena_offset, \
                    f"live roots {a.name} and {b.name} overlap in the arena"

    @pytest.mark.parametrize("model", ["toy", "mobilenet-v2", "shufflenet-v2"])
    def test_packing_and_liveness(self, model):
        plan = plan_buffers(build_model(model))
        self._assert_packing(plan)
        self._assert_no_live_overlap(plan)

    def test_split_graph_packing(self, split_toy):
        for elide in (True, False):
            plan = plan_buffers(split_toy, elide=elide)
            self._assert_packing(plan)
            self._assert_no_live_overlap(plan)

    def test_reuse_beats_naive(self):
        plan = plan_buffers(build_model("mobilenet-v2"))
        assert plan.arena_bytes <= plan.naive_bytes
        # Lifetime reuse on a deep chain model must be substantial.
        assert plan.arena_bytes < 0.6 * plan.naive_bytes


class TestStorageRects:
    def test_rects_contained_in_roots(self, split_toy):
        plan = plan_buffers(split_toy)
        for name, st in plan.storage.items():
            root = plan.roots[st.root]
            if not st.is_rect:
                continue
            assert len(st.offset) == len(root.shape)
            for off, extent, limit in zip(st.offset, st.shape, root.shape):
                assert off >= 0
                assert off + extent <= limit, \
                    f"{name} rectangle leaves its root {st.root}"

    def test_root_storage_is_identity(self, toy):
        plan = plan_buffers(toy)
        for name, root in plan.roots.items():
            st = plan.storage[name]
            assert st.root == name
            assert st.offset == (0,) * len(root.shape)
            assert st.shape == root.shape


class TestElision:
    def test_split_graph_counters(self, split_toy):
        stats = plan_buffers(split_toy).stats()
        # MD-DP splits introduce Slice/Concat pairs the memopt pass
        # marks elided; the planner must turn them into views.
        assert stats["slice_views"] > 0
        assert stats["concat_zero_copy_inputs"] > 0
        assert stats["elided_nodes"] > 0
        assert stats["padded_conv_reads"] > 0
        assert stats["copies_elided"] == (
            stats["concat_zero_copy_inputs"] + stats["pad_zero_copy"]
            + stats["padded_conv_reads"])

    def test_elide_off_disables_coallocation(self, split_toy):
        stats = plan_buffers(split_toy, elide=False).stats()
        assert stats["concat_zero_copy_inputs"] == 0
        assert stats["pad_zero_copy"] == 0
        assert stats["padded_conv_reads"] == 0
        assert stats["inplace_reused"] == 0

    def test_margin_roots_are_pinned(self, toy):
        plan = plan_buffers(toy)
        margined = [r for r in plan.roots.values()
                    if any(b or a for b, a in r.margins)]
        assert margined, "toy has padded convs; some root must carry margins"
        assert all(r.pinned for r in margined)

    def test_inplace_requires_sole_dying_use(self):
        # y = relu(x) with x also a graph output: the input must NOT be
        # overwritten even though Relu is in-place capable.
        b = GraphBuilder("ip", seed=0)
        x = b.input("x", (1, 8, 8, 4))
        c = b.conv(x, cout=4, kernel=1, name="c1")
        r = b.relu(c, name="r1")
        b.output(c)
        b.output(r)
        g = b.build()
        plan = plan_buffers(g)
        assert plan.inplace_reused == 0
        assert plan.storage[r].root != plan.storage[c].root

    def test_inplace_on_dying_chain(self):
        b = GraphBuilder("ip2", seed=0)
        x = b.input("x", (1, 8, 8, 4))
        c = b.conv(x, cout=4, kernel=1, name="c1")
        r = b.relu(c, name="r1")
        b.output(r)
        g = b.build()
        plan = plan_buffers(g)
        assert plan.inplace_reused == 1
        assert plan.storage[r].root == plan.storage[c].root


class TestStats:
    def test_stats_json_round_trip(self, split_toy):
        stats = plan_buffers(split_toy).stats()
        assert json.loads(json.dumps(stats)) == stats
        for key in ("arena_bytes", "naive_bytes", "num_roots", "num_tensors",
                    "slice_views", "concat_zero_copy_inputs", "pad_zero_copy",
                    "padded_conv_reads", "elided_nodes", "inplace_reused",
                    "copies_elided"):
            assert key in stats

    def test_batched_shapes_scale_arena(self, toy):
        base = plan_buffers(toy)
        shapes = {name: (8,) + tuple(info.shape[1:])
                  if info.shape and info.shape[0] == 1 else info.shape
                  for name, info in toy.tensors.items()}
        batched = plan_buffers(toy, shapes=shapes)
        assert batched.arena_bytes > base.arena_bytes
