"""Regression tests for the perf-harness compare semantics.

The contract that matters for a growing metric set: metrics present on
only one side of a baseline comparison are *informational* — reported
as ``new``/``missing`` rows but never a ``--check`` failure.  Without
this, every PR that adds a metric family (as the concurrency work adds
``parallel_ms``/``host_rps``) would trip CI on the stale baseline.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from perf.harness import (  # noqa: E402
    compare,
    format_rows,
    higher_is_better,
    load_baseline,
    save_baseline,
)


def _results(metrics):
    return {"schema": 1, "config": {}, "metrics": metrics}


class TestCompareInformationalRows:
    def test_new_metric_is_not_a_failure(self):
        rows, ok = compare(_results({"a.ms": 1.0}),
                           _results({"a.ms": 1.0, "b.parallel_ms": 5.0}))
        assert ok
        by_name = {r[0]: r for r in rows}
        name, base, cur, ratio, status = by_name["b.parallel_ms"]
        assert status == "new"
        assert base is None and ratio is None
        assert cur == 5.0

    def test_missing_metric_is_not_a_failure(self):
        rows, ok = compare(_results({"a.ms": 1.0, "gone.ms": 2.0}),
                           _results({"a.ms": 1.0}))
        assert ok
        by_name = {r[0]: r for r in rows}
        assert by_name["gone.ms"][4] == "missing"

    def test_new_rows_coexist_with_real_regressions(self):
        # A genuine regression still fails even when new rows exist.
        rows, ok = compare(_results({"a.ms": 1.0}),
                           _results({"a.ms": 10.0, "b.host_rps": 3.0}),
                           fail_ratio=3.0)
        assert not ok
        by_name = {r[0]: r for r in rows}
        assert by_name["a.ms"][4] == "REGRESSION"
        assert by_name["b.host_rps"][4] == "new"

    def test_format_rows_renders_one_sided_rows(self):
        rows, _ = compare(_results({"old.ms": 1.0}),
                          _results({"new.ms": 2.0}))
        text = format_rows(rows)
        assert "new" in text and "missing" in text
        assert "-" in text  # absent side rendered as a dash, not a crash


class TestCompareDirections:
    def test_throughput_regresses_when_it_drops(self):
        rows, ok = compare(_results({"serve.m.host_rps": 10.0}),
                           _results({"serve.m.host_rps": 2.0}),
                           fail_ratio=3.0)
        assert not ok
        assert rows[0][4] == "REGRESSION"

    def test_throughput_gain_is_faster_not_regression(self):
        rows, ok = compare(_results({"serve.m.host_rps": 2.0}),
                           _results({"serve.m.host_rps": 10.0}))
        assert ok
        assert rows[0][4] == "faster"

    def test_higher_is_better_families(self):
        assert higher_is_better("serve.m.host_rps")
        assert higher_is_better("serve.m.host_locked_rps")
        assert higher_is_better("serve.m.host_win")
        assert higher_is_better("serve.m.win")
        assert not higher_is_better("numerical.m.parallel_ms")
        assert not higher_is_better("numerical.m.compiled_batch8_ms")
        assert not higher_is_better("compile.m.plan_ms")


class TestBaselineIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "base.json"
        save_baseline(path, _results({"a.ms": 1.5}))
        assert load_baseline(path)["metrics"] == {"a.ms": 1.5}

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"schema": 99, "metrics": {}}')
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)
