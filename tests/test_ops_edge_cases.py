"""Edge-case tests for shape inference and numerical kernels."""

import numpy as np
import pytest

from repro.graph.node import Node
from repro.graph.ops import ShapeError, infer_shapes
from repro.runtime.numerical import execute_node


class TestSliceEdgeCases:
    def test_negative_axis(self):
        node = Node("s", "Slice", ["x"], ["y"],
                    {"axis": -1, "start": 0, "end": 2})
        assert infer_shapes(node, [(1, 4, 4, 8)]) == [(1, 4, 4, 2)]

    def test_negative_bounds(self):
        node = Node("s", "Slice", ["x"], ["y"],
                    {"axis": 1, "start": -3, "end": -1})
        assert infer_shapes(node, [(1, 8, 4, 2)]) == [(1, 2, 4, 2)]

    def test_clamped_end(self):
        node = Node("s", "Slice", ["x"], ["y"],
                    {"axis": 1, "start": 6, "end": 100})
        assert infer_shapes(node, [(1, 8, 4, 2)]) == [(1, 2, 4, 2)]

    def test_numerical_matches_inference(self, rng):
        x = rng.standard_normal((1, 8, 4, 2)).astype(np.float32)
        node = Node("s", "Slice", ["x"], ["y"],
                    {"axis": 1, "start": 2, "end": 5})
        out = execute_node(node, [x])
        (shape,) = infer_shapes(node, [x.shape])
        assert out.shape == shape
        np.testing.assert_array_equal(out, x[:, 2:5])


class TestConcatEdgeCases:
    def test_negative_axis(self):
        node = Node("c", "Concat", ["a", "b"], ["y"], {"axis": -1})
        assert infer_shapes(node, [(1, 4, 4, 3), (1, 4, 4, 5)]) == \
            [(1, 4, 4, 8)]

    def test_single_input(self):
        node = Node("c", "Concat", ["a"], ["y"], {"axis": 1})
        assert infer_shapes(node, [(1, 4)]) == [(1, 4)]


class TestTransposeEdgeCases:
    def test_default_perm_reverses(self):
        node = Node("t", "Transpose", ["x"], ["y"], {})
        assert infer_shapes(node, [(2, 3, 4)]) == [(4, 3, 2)]

    def test_invalid_perm_rejected(self):
        node = Node("t", "Transpose", ["x"], ["y"], {"perm": (0, 0, 1)})
        with pytest.raises(ShapeError):
            infer_shapes(node, [(2, 3, 4)])


class TestReshapeEdgeCases:
    def test_two_minus_ones_rejected(self):
        node = Node("r", "Reshape", ["x"], ["y"], {"shape": (-1, -1)})
        with pytest.raises(ShapeError):
            infer_shapes(node, [(4, 4)])

    def test_indivisible_minus_one_rejected(self):
        node = Node("r", "Reshape", ["x"], ["y"], {"shape": (3, -1)})
        with pytest.raises(ShapeError):
            infer_shapes(node, [(4, 4)])


class TestPadEdgeCases:
    def test_negative_padding_rejected(self):
        node = Node("p", "Pad", ["x"], ["y"],
                    {"pads": ((0, 0), (-1, 0), (0, 0), (0, 0))})
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4, 4, 2)])

    def test_rank_mismatch_rejected(self):
        node = Node("p", "Pad", ["x"], ["y"], {"pads": ((0, 0), (1, 1))})
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4, 4, 2)])


class TestConvEdgeCases:
    def test_group_not_dividing_channels_rejected(self):
        node = Node("c", "Conv", ["x", "w"], ["y"], {
            "kernel_shape": (1, 1), "strides": (1, 1),
            "pads": (0, 0, 0, 0), "group": 3})
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4, 4, 8), (1, 1, 2, 6)])

    def test_kernel_larger_than_padded_input_rejected(self):
        node = Node("c", "Conv", ["x", "w"], ["y"], {
            "kernel_shape": (7, 7), "strides": (1, 1),
            "pads": (0, 0, 0, 0), "group": 1})
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4, 4, 2), (7, 7, 2, 4)])

    def test_rectangular_input(self):
        node = Node("c", "Conv", ["x", "w"], ["y"], {
            "kernel_shape": (3, 3), "strides": (2, 1),
            "pads": (1, 1, 1, 1), "group": 1})
        assert infer_shapes(node, [(1, 16, 9, 2), (3, 3, 2, 4)]) == \
            [(1, 8, 9, 4)]
