"""Tests for the extension models (beyond the paper's evaluated five)."""

import numpy as np
from repro.models import build_model
from repro.pimflow import PimFlow, PimFlowConfig
from repro.runtime.numerical import execute
from repro.transform.patterns import find_pipeline_candidates


class TestBasicResNets:
    def test_resnet18_structure(self):
        g = build_model("resnet-18")
        # stem + 8 basic blocks x 2 convs + 3 downsample convs = 20.
        assert g.op_counts()["Conv"] == 20
        assert g.tensors[g.outputs[0]].shape == (1, 1000)

    def test_resnet34_structure(self):
        g = build_model("resnet-34")
        assert g.op_counts()["Conv"] == 36

    def test_resnet18_runs(self, rng):
        g = build_model("resnet-18")
        out = execute(g, {"input": rng.standard_normal((1, 224, 224, 3)) * 0.1})
        assert np.isfinite(list(out.values())[0]).all()

    def test_resnet18_pimflow_speedup_smaller_than_mobilenet(self):
        """Compute-heavy basic blocks: modest PIM gains, like ResNet50."""
        g = build_model("resnet-18")
        base = PimFlow(PimFlowConfig(mechanism="gpu")).run(g).makespan_us
        pf = PimFlow(PimFlowConfig(mechanism="pimflow")).run(g).makespan_us
        assert 0.9 < base / pf < 1.5


class TestShuffleNetV2:
    def test_structure(self):
        g = build_model("shufflenet-v2")
        counts = g.op_counts()
        assert counts["Conv"] == 56
        assert counts["Transpose"] == 16  # one shuffle per unit
        assert counts["Concat"] == 16

    def test_channel_shuffle_is_permutation(self, rng):
        """The shuffle must only permute channels, never mix values."""
        from repro.models.shufflenet import _channel_shuffle
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder(seed=1)
        x = b.input("x", (1, 4, 4, 8))
        y = _channel_shuffle(b, x)
        b.output(y)
        g = b.build()
        data = rng.standard_normal((1, 4, 4, 8))
        out = execute(g, {"x": data})[y]
        # Same multiset of values per spatial position.
        np.testing.assert_allclose(np.sort(out, axis=-1),
                                   np.sort(data, axis=-1), atol=1e-6)
        # And specifically the groups=2 interleave.
        np.testing.assert_allclose(out[0, 0, 0],
                                   data[0, 0, 0].reshape(2, 4).T.reshape(-1),
                                   atol=1e-6)

    def test_runs_finite(self, rng):
        g = build_model("shufflenet-v2")
        out = execute(g, {"input": rng.standard_normal((1, 224, 224, 3)) * 0.1})
        assert np.isfinite(list(out.values())[0]).all()

    def test_has_pipeline_patterns(self):
        """The branchy units still expose 1x1-DW chains to the matcher."""
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        g = flow.prepare(build_model("shufflenet-v2"))
        patterns = find_pipeline_candidates(g)
        assert len(patterns) > 0

    def test_pimflow_compiles_and_wins(self):
        g = build_model("shufflenet-v2")
        base = PimFlow(PimFlowConfig(mechanism="gpu")).run(g).makespan_us
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        compiled = flow.compile(g)
        pf = flow.engine.run(compiled.graph).makespan_us
        assert base / pf > 1.0

    def test_compiled_semantics_preserved(self, rng):
        """End-to-end equivalence through splits around channel shuffles."""
        g = build_model("shufflenet-v2")
        flow = PimFlow(PimFlowConfig(mechanism="pimflow-md"))
        compiled = flow.compile(g)
        feed = {"input": rng.standard_normal((1, 224, 224, 3)) * 0.1}
        ref = execute(g, feed)
        out = execute(compiled.graph, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=5e-3, atol=5e-3)
