"""Tests for PIM channel tiling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowering.im2col import LoweredGemv
from repro.lowering.tiling import (
    GRANULARITIES,
    tile_over_channels,
    tiles_by_channel,
)


def _gemv(rows=16, k=64, n=32, strided=False):
    return LoweredGemv(rows=rows, k=k, n=n,
                       contiguous_k=k if not strided else 8, strided=strided)


def _covers_exactly(tiles, gemv):
    """Tiles must partition the (K, N) space with full row coverage."""
    cells = set()
    for t in tiles:
        assert t.rows == gemv.rows
        for kk in range(t.k_start, t.k_start + t.k):
            for cc in range(t.col_start, t.col_start + t.n):
                assert (kk, cc) not in cells, "overlapping tiles"
                cells.add((kk, cc))
    assert len(cells) == gemv.k * gemv.n, "tiles do not cover the space"


class TestGranularities:
    def test_gact_blocks_leave_channels_idle(self):
        # 32 output columns = one column block -> only 1 channel busy.
        tiles = tile_over_channels(_gemv(n=32), 16, "g_act")
        assert len({t.channel for t in tiles}) == 1

    def test_readres_spreads_columns(self):
        tiles = tile_over_channels(_gemv(n=32), 16, "readres")
        assert len({t.channel for t in tiles}) == 16

    def test_comp_splits_k_when_columns_scarce(self):
        tiles = tile_over_channels(_gemv(n=2, k=64), 16, "comp")
        channels = {t.channel for t in tiles}
        assert len(channels) > 2
        assert any(t.partial for t in tiles)

    def test_granularity_ordering_of_parallelism(self):
        gemv = _gemv(n=8, k=256)
        used = {
            gran: len({t.channel for t in tile_over_channels(gemv, 16, gran)})
            for gran in GRANULARITIES
        }
        assert used["g_act"] <= used["readres"] <= used["comp"]

    def test_unknown_granularity_rejected(self):
        with pytest.raises(ValueError):
            tile_over_channels(_gemv(), 16, "bogus")

    def test_bad_channel_count_rejected(self):
        with pytest.raises(ValueError):
            tile_over_channels(_gemv(), 0)


class TestCoverage:
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("n", [1, 2, 15, 16, 17, 64, 1000])
    def test_full_coverage(self, granularity, n):
        gemv = _gemv(n=n, k=48)
        tiles = tile_over_channels(gemv, 16, granularity)
        _covers_exactly(tiles, gemv)

    @settings(max_examples=40, deadline=None)
    @given(
        k=st.integers(16, 512),
        n=st.integers(1, 200),
        channels=st.integers(1, 32),
        granularity=st.sampled_from(GRANULARITIES),
    )
    def test_property_coverage(self, k, n, channels, granularity):
        gemv = _gemv(rows=4, k=k, n=n)
        tiles = tile_over_channels(gemv, channels, granularity)
        _covers_exactly(tiles, gemv)
        assert all(0 <= t.channel < channels for t in tiles)

    def test_macs_conserved(self):
        gemv = _gemv(rows=8, k=96, n=5)
        tiles = tile_over_channels(gemv, 16, "comp")
        assert sum(t.macs for t in tiles) == gemv.macs


class TestTilesByChannel:
    def test_grouping(self):
        gemv = _gemv(n=3, k=64)
        tiles = tile_over_channels(gemv, 16, "comp")
        grouped = tiles_by_channel(tiles)
        assert sum(len(v) for v in grouped.values()) == len(tiles)
        for ch, group in grouped.items():
            assert all(t.channel == ch for t in group)

    def test_balance_with_many_columns(self):
        tiles = tile_over_channels(_gemv(n=160), 16, "comp")
        sizes = [t.n for t in tiles]
        assert max(sizes) - min(sizes) <= 1
