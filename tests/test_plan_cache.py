"""Tests for the content-addressed profile cache."""

import json

import pytest

from repro.models import build_model
from repro.pimflow import PimFlow, PimFlowConfig
from repro.plan.cache import MemoryProfileCache, ProfileCache
from repro.search.table import RegionMeasurement


def _entry(name="c0", time_us=3.0):
    return [RegionMeasurement(name, 1, "gpu", time_us).to_dict()]


class TestProfileCacheUnit:
    def test_miss_then_hit(self, tmp_path):
        cache = ProfileCache(tmp_path)
        assert cache.lookup("cfg", "fp") is None
        cache.store("cfg", "fp", _entry())
        got = cache.lookup("cfg", "fp")
        assert got == _entry()
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1,
                                 "hit_rate": 0.5}

    def test_empty_entry_is_a_valid_hit(self, tmp_path):
        """Negative results (e.g. unsplittable chains) are cacheable."""
        cache = ProfileCache(tmp_path)
        cache.store("cfg", "fp", [])
        assert cache.lookup("cfg", "fp") == []
        assert cache.stats()["hits"] == 1

    def test_namespaced_by_config(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cache.store("cfg-a", "fp", _entry(time_us=1.0))
        cache.store("cfg-b", "fp", _entry(time_us=2.0))
        assert cache.lookup("cfg-a", "fp")[0]["time_us"] == 1.0
        assert cache.lookup("cfg-b", "fp")[0]["time_us"] == 2.0
        assert cache.num_entries == 2

    def test_invalidate_one_config(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cache.store("cfg-a", "fp1", _entry())
        cache.store("cfg-a", "fp2", _entry())
        cache.store("cfg-b", "fp1", _entry())
        assert cache.invalidate(config_fingerprint="cfg-a") == 2
        assert cache.num_entries == 1
        assert cache.lookup("cfg-a", "fp1") is None
        assert cache.lookup("cfg-b", "fp1") is not None

    def test_invalidate_everything(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cache.store("cfg-a", "fp", _entry())
        cache.store("cfg-b", "fp", _entry())
        assert cache.invalidate() == 2
        assert cache.num_entries == 0

    def test_corrupt_entry_treated_as_miss_and_removed(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cache.store("cfg", "fp", _entry())
        (entry,) = (tmp_path / "objects").glob("*/*.json")
        entry.write_text("{not json")
        assert cache.lookup("cfg", "fp") is None
        assert not entry.exists()

    def test_persists_across_instances(self, tmp_path):
        ProfileCache(tmp_path).store("cfg", "fp", _entry())
        assert ProfileCache(tmp_path).lookup("cfg", "fp") == _entry()

    def test_record_and_read_last_run(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cache.lookup("cfg", "fp")
        cache.store("cfg", "fp", _entry())
        cache.record_run("cfg")
        last = ProfileCache(tmp_path).last_run()
        assert last["config_fingerprint"] == "cfg"
        assert last["misses"] == 1 and last["entries"] == 1

    def test_hit_rate(self, tmp_path):
        cache = ProfileCache(tmp_path)
        assert cache.hit_rate == 0.0
        cache.store("cfg", "fp", _entry())
        cache.lookup("cfg", "fp")
        cache.lookup("cfg", "other")
        assert cache.hit_rate == 0.5


class TestCachedProfiling:
    """End-to-end: the second profile of a model hits only the cache."""

    @pytest.fixture()
    def toy(self):
        return build_model("toy")

    def test_second_profile_runs_zero_simulations(self, toy, tmp_path):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow",
                                     cache_dir=tmp_path))
        first = flow.profile(toy)
        sims_first = flow.engine.run_count
        assert sims_first > 0
        second = flow.profile(toy)
        assert flow.engine.run_count == sims_first  # zero new invocations
        assert second.to_dict() == first.to_dict()
        assert flow.cache.stats()["misses"] == 0

    def test_fresh_instance_reuses_disk_cache(self, toy, tmp_path):
        config = PimFlowConfig(mechanism="pimflow", cache_dir=tmp_path)
        first = PimFlow(config).profile(toy)
        flow2 = PimFlow(config)
        second = flow2.profile(toy)
        assert flow2.engine.run_count == 0
        assert second.to_dict() == first.to_dict()

    def test_cached_compile_reproduces_makespan(self, toy, tmp_path):
        config = PimFlowConfig(mechanism="pimflow", cache_dir=tmp_path)
        cold = PimFlow(config).run(toy)
        flow2 = PimFlow(config)
        warm = flow2.run(toy)
        assert warm.makespan_us == cold.makespan_us
        assert warm.events == cold.events

    def test_config_change_misses_cache(self, toy, tmp_path):
        PimFlow(PimFlowConfig(mechanism="pimflow",
                              cache_dir=tmp_path)).profile(toy)
        other = PimFlow(PimFlowConfig(mechanism="pimflow-md",
                                      cache_dir=tmp_path))
        other.profile(toy)
        assert other.engine.run_count > 0
        assert other.cache.stats()["misses"] > 0

    def test_without_cache_dir_nothing_is_written(self, toy, tmp_path,
                                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        flow.profile(toy)
        # No cache_dir -> in-memory memo only; the filesystem stays
        # untouched.
        assert isinstance(flow.cache, MemoryProfileCache)
        assert list(tmp_path.iterdir()) == []

    def test_memoize_false_disables_caching(self, toy, tmp_path,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        flow = PimFlow(PimFlowConfig(mechanism="pimflow", memoize=False))
        flow.profile(toy)
        first = flow.engine.run_count
        assert flow.cache is None
        flow.profile(toy)
        assert flow.engine.run_count == 2 * first  # everything re-measured
        assert list(tmp_path.iterdir()) == []

    def test_memory_memo_skips_repeat_simulations(self, toy):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        first = flow.profile(toy)
        sims_first = flow.engine.run_count
        assert sims_first > 0
        second = flow.profile(toy)
        assert flow.engine.run_count == sims_first
        assert second.to_dict() == first.to_dict()

    def test_identical_layers_share_cache_slots(self, tmp_path):
        """Structurally identical regions hit the same object, so a
        model with repeated blocks stores fewer entries than lookups."""
        flow = PimFlow(PimFlowConfig(mechanism="pimflow",
                                     cache_dir=tmp_path))
        flow.profile(build_model("toy"))
        stats = flow.cache.stats()
        assert stats["hits"] > 0  # repeated shapes within one cold run
        # every miss stores exactly one entry; hits reuse them
        assert flow.cache.num_entries == stats["misses"]

    def test_run_records_cache_run_summary(self, toy, tmp_path):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow",
                                     cache_dir=tmp_path))
        flow.profile(toy)
        last = flow.cache.last_run()
        assert last["config_fingerprint"] == flow.compiler.config_fingerprint
        data = json.loads((tmp_path / "last_run.json").read_text())
        assert data == last
