"""Tests for the analysis helpers."""

import pytest

from repro.analysis.breakdown import (
    arithmetic_intensities,
    conv_only_graph,
    op_category,
    runtime_breakdown,
)
from repro.analysis.ratios import candidate_layer_names, mddp_ratio_distribution
from repro.gpu.device import GpuDevice
from repro.models import build_model
from repro.search.solver import Decision


class TestCategories:
    def test_category_labels(self, pointwise_chain_graph):
        g = pointwise_chain_graph
        assert op_category(g.node("pw1"), g) == "conv1x1"
        assert op_category(g.node("dw1"), g) == "dwconv"
        assert op_category(g.node("act1"), g) == "other"

    def test_breakdown_sums_to_total(self, pointwise_chain_graph):
        gpu = GpuDevice()
        breakdown = runtime_breakdown(pointwise_chain_graph, gpu)
        total = gpu.run_graph(pointwise_chain_graph).time_us
        assert sum(breakdown.values()) == pytest.approx(total)

    def test_mobilenet_dominated_by_conv(self):
        """Fig. 1 left: convolution layers dominate CNN inference."""
        from repro.transform.fusion import fuse
        g = fuse(build_model("mobilenet-v2"))
        breakdown = runtime_breakdown(g, GpuDevice())
        conv_time = breakdown.get("conv1x1", 0) + breakdown.get("conv", 0) \
            + breakdown.get("dwconv", 0)
        assert conv_time > 0.6 * sum(breakdown.values())


class TestArithmeticIntensity:
    def test_pointwise_lower_than_3x3(self):
        """Fig. 1 right: 1x1 convs sit at much lower intensity."""
        g = build_model("resnet-50")
        ai = dict(arithmetic_intensities(g))
        pw = [v for k, v in ai.items() if "reduce" in k or "expand" in k]
        k3 = [v for k, v in ai.items() if "conv3x3" in k]
        assert sum(pw) / len(pw) < sum(k3) / len(k3)

    def test_all_convs_included(self):
        g = build_model("vgg-16")
        assert len(arithmetic_intensities(g)) == 13


class TestConvOnlyGraph:
    def test_contains_only_candidates(self):
        g = build_model("mobilenet-v2")
        region = conv_only_graph(g)
        region.validate()
        assert all(n.op_type == "Conv" for n in region.nodes)
        assert all(int(n.attr("group", 1)) == 1 for n in region.nodes)

    def test_rejects_graph_without_convs(self, fc_graph):
        with pytest.raises(ValueError):
            conv_only_graph(fc_graph)


class TestRatioDistribution:
    def test_distribution_sums_to_one(self):
        decisions = [
            Decision(("a",), "split", 1.0, ratio_gpu=0.0),
            Decision(("b",), "split", 1.0, ratio_gpu=0.5),
            Decision(("c",), "split", 1.0, ratio_gpu=0.5),
            Decision(("d",), "gpu", 1.0),
        ]
        dist = mddp_ratio_distribution(decisions, candidates={"a", "b", "c", "d"})
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist[0] == pytest.approx(0.25)
        assert dist[50] == pytest.approx(0.5)
        assert dist[100] == pytest.approx(0.25)

    def test_non_candidate_gpu_excluded(self):
        decisions = [
            Decision(("a",), "split", 1.0, ratio_gpu=0.0),
            Decision(("relu",), "gpu", 1.0),
        ]
        dist = mddp_ratio_distribution(decisions, candidates={"a"})
        assert dist[0] == pytest.approx(1.0)
        assert dist[100] == 0.0

    def test_empty(self):
        assert sum(mddp_ratio_distribution([], set()).values()) == 0.0

    def test_candidate_names(self, pointwise_chain_graph):
        names = candidate_layer_names(pointwise_chain_graph)
        assert names == {"pw1", "pw2"}
