"""Tests for the schedule Gantt renderer."""

import pytest

from repro.analysis.gantt import render_gantt, utilization
from repro.graph.builder import GraphBuilder
from repro.gpu.device import GpuDevice
from repro.pim.device import PimDevice
from repro.runtime.engine import ExecutionEngine


@pytest.fixture
def result():
    b = GraphBuilder(seed=7)
    x = b.input("x", (1, 14, 14, 64))
    a = b.conv(x, cout=64, kernel=1, name="ca")
    c = b.conv(x, cout=64, kernel=1, name="cb")
    b.output(b.add(a, c))
    g = b.build()
    g.node("ca").device = "gpu"
    g.node("cb").device = "pim"
    return ExecutionEngine(GpuDevice(), PimDevice()).run(g)


class TestGantt:
    def test_renders_both_devices(self, result):
        lines = render_gantt(result, width=40)
        assert len(lines) == 2
        assert lines[0].startswith("GPU")
        assert lines[1].startswith("PIM")
        assert "#" in lines[0]
        assert "=" in lines[1]

    def test_width_respected(self, result):
        lines = render_gantt(result, width=32)
        bar = lines[0].split("|")[1]
        assert len(bar) == 32

    def test_rejects_tiny_width(self, result):
        with pytest.raises(ValueError):
            render_gantt(result, width=4)

    def test_utilization_fractions(self, result):
        util = utilization(result)
        assert 0.0 < util["gpu"] <= 1.0
        assert 0.0 < util["pim"] <= 1.0
        assert util["overlap"] >= 0.0
