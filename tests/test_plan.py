"""Tests for the compile-once artifact: fingerprints and ExecutionPlan."""

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.models import build_model
from repro.pimflow import MECHANISMS, Compiler, PimFlow, PimFlowConfig
from repro.plan import (
    ExecutionPlan,
    PlanFormatError,
    canonical_region,
    config_fingerprint,
    graph_fingerprint,
    region_fingerprint,
    stable_hash,
)
from repro.runtime.executor import PlanExecutor
from repro.search.table import MeasurementTable, RegionMeasurement


def _conv_graph(name="g", cin=8, cout=16, kernel=3, node="c0"):
    b = GraphBuilder(name, seed=5)
    x = b.input("x", (1, 14, 14, cin))
    y = b.conv(x, cout=cout, kernel=kernel, name=node)
    b.output(y)
    return b.build()


@pytest.fixture(scope="module")
def toy():
    return build_model("toy")


class TestFingerprints:
    def test_stable_hash_deterministic(self):
        payload = {"b": 2, "a": [1, 2, (3, 4)]}
        assert stable_hash(payload) == stable_hash({"a": [1, 2, (3, 4)], "b": 2})

    def test_identical_structure_same_fingerprint(self):
        a = _conv_graph(name="one", node="convA")
        b = _conv_graph(name="two", node="convB")
        # Different graph, node and tensor names; same structure.
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_shape_change_changes_fingerprint(self):
        assert graph_fingerprint(_conv_graph(cout=16)) != \
            graph_fingerprint(_conv_graph(cout=32))

    def test_attr_change_changes_fingerprint(self):
        assert graph_fingerprint(_conv_graph(kernel=3)) != \
            graph_fingerprint(_conv_graph(kernel=1))

    def test_region_params_distinguish_slots(self):
        g = _conv_graph()
        assert region_fingerprint(g, "split", ratios=[0.0, 1.0]) != \
            region_fingerprint(g, "split", ratios=[0.0, 0.5, 1.0])
        assert region_fingerprint(g, "pipeline", stages=2) != \
            region_fingerprint(g, "pipeline", stages=3)
        assert region_fingerprint(g, "gpu") != \
            region_fingerprint(g, "split", ratios=[0.0, 1.0])

    def test_canonical_region_renames_everything(self):
        desc = canonical_region(_conv_graph(node="weird_name"))
        blob = str(desc)
        assert "weird_name" not in blob
        assert "in0" in blob and "t0" in blob

    def test_config_fingerprint_sensitivity(self):
        a = Compiler(PimFlowConfig(mechanism="pimflow"))
        b = Compiler(PimFlowConfig(mechanism="pimflow"))
        c = Compiler(PimFlowConfig(mechanism="newton++"))
        d = Compiler(PimFlowConfig(mechanism="pimflow",
                                   pipeline_stages=3))
        assert a.config_fingerprint == b.config_fingerprint
        assert a.config_fingerprint != c.config_fingerprint
        assert a.config_fingerprint != d.config_fingerprint

    def test_channel_split_changes_fingerprint(self):
        from repro.memsys.system import MemorySystem

        a = Compiler(PimFlowConfig(mechanism="pimflow"))
        b = Compiler(PimFlowConfig(mechanism="pimflow",
                                   memory=MemorySystem(32, 8)))
        assert a.config_fingerprint != b.config_fingerprint

    def test_config_fingerprint_is_generic(self):
        fp = config_fingerprint(mechanism="x", spec=None, gpu_config={"a": 1},
                                pim_config=None, pim_opts=None)
        assert isinstance(fp, str) and len(fp) == 64


class TestExecutionPlanRoundTrip:
    @pytest.fixture(scope="class")
    def plan_and_flow(self, toy):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        compiled = flow.compile(toy)
        plan = flow.build_plan(toy, model_name="toy", with_traces=True,
                               compiled=compiled)
        return plan, flow, compiled

    def test_round_trip_identical_schedule_and_makespan(
            self, plan_and_flow, tmp_path):
        plan, flow, compiled = plan_and_flow
        direct = flow.engine.run(compiled.graph)
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = ExecutionPlan.load(path)
        result = PlanExecutor(loaded).run()
        assert result.makespan_us == direct.makespan_us
        assert result.events == direct.events

    def test_round_trip_preserves_decisions(self, plan_and_flow, tmp_path):
        plan, _, compiled = plan_and_flow
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = ExecutionPlan.load(path)
        assert loaded.decision_objects() == compiled.decisions

    def test_to_dict_from_dict_idempotent(self, plan_and_flow):
        plan, _, _ = plan_and_flow
        once = plan.to_dict()
        twice = ExecutionPlan.from_dict(once).to_dict()
        assert once == twice

    def test_lean_plan_reproduces_makespan(self, plan_and_flow, tmp_path):
        """Weight values never influence timing, so weight-free plans
        (the practical artifact for large models) run identically."""
        plan, flow, compiled = plan_and_flow
        path = tmp_path / "lean.json"
        plan.save(path, include_weights=False)
        result = PlanExecutor(path).run()
        assert result.makespan_us == flow.engine.run(compiled.graph).makespan_us

    def test_traces_attached_and_serialized(self, plan_and_flow, tmp_path):
        plan, _, compiled = plan_and_flow
        pim_layers = [n.name for n in compiled.graph.nodes
                      if n.device == "pim" and n.op_type == "Conv"]
        assert plan.traces
        assert set(plan.traces) <= set(n.name for n in compiled.graph.nodes)
        assert pim_layers  # the toy model offloads something
        path = tmp_path / "plan.json"
        plan.save(path)
        assert ExecutionPlan.load(path).traces == plan.traces

    def test_unsupported_version_rejected(self, plan_and_flow):
        plan, _, _ = plan_and_flow
        data = plan.to_dict()
        data["version"] = 99
        with pytest.raises(PlanFormatError):
            ExecutionPlan.from_dict(data)

    def test_diff_empty_for_identical(self, plan_and_flow):
        plan, _, _ = plan_and_flow
        clone = ExecutionPlan.from_dict(plan.to_dict())
        assert plan.diff(clone) == []

    def test_diff_reports_mechanism_and_decisions(self, plan_and_flow, toy):
        plan, _, _ = plan_and_flow
        other = PimFlow(PimFlowConfig(mechanism="newton++")).build_plan(
            toy, model_name="toy")
        lines = plan.diff(other)
        assert any("mechanism" in line for line in lines)

    def test_provenance(self, plan_and_flow):
        plan, _, _ = plan_and_flow
        assert plan.provenance["model"] == "toy"
        assert plan.provenance["source_graph_fingerprint"]
        assert plan.provenance["measurements"] > 0

    def test_summary(self, plan_and_flow):
        plan, _, _ = plan_and_flow
        info = plan.summary()
        assert info["mechanism"] == "pimflow"
        assert info["decisions"] == len(plan.decisions)


class TestPlanRegression:
    """PimFlow.run() and the compile-once path must agree exactly."""

    @pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
    def test_toy_plan_matches_direct_run(self, toy, mechanism, tmp_path):
        flow = PimFlow(PimFlowConfig(mechanism=mechanism))
        direct = flow.run(toy)
        plan = flow.build_plan(toy, model_name="toy")
        path = tmp_path / "plan.json"
        plan.save(path)
        result = PlanExecutor(path).run()
        assert result.makespan_us == direct.makespan_us
        assert result.events == direct.events

    @pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
    def test_mobilenet_plan_matches_direct_run(self, mechanism, tmp_path):
        model = build_model("mobilenet-v2")
        flow = PimFlow(PimFlowConfig(mechanism=mechanism))
        if mechanism == "gpu":
            direct = flow.run(model)
            plan = flow.build_plan(model, model_name="mobilenet-v2")
        else:
            compiled = flow.compile(model)
            direct = flow.run(model, compiled=compiled)
            plan = flow.build_plan(model, model_name="mobilenet-v2",
                                   compiled=compiled)
        path = tmp_path / "plan.json"
        plan.save(path, include_weights=False)
        result = PlanExecutor(path).run()
        assert result.makespan_us == direct.makespan_us

    def test_executor_rebuilds_channel_split(self, toy, tmp_path):
        from repro.memsys.system import MemorySystem

        flow = PimFlow(PimFlowConfig(mechanism="pimflow",
                                     memory=MemorySystem(32, 8)))
        direct = flow.run(toy)
        path = tmp_path / "plan.json"
        flow.build_plan(toy).save(path)
        executor = PlanExecutor(path)
        assert executor.engine.gpu.config.mem_channels == 24
        assert executor.engine.pim.config.num_channels == 8
        assert executor.run().makespan_us == direct.makespan_us


class TestRuntimeIsSearchFree:
    def test_executor_process_never_imports_search(self, toy, tmp_path):
        """Serving a plan must not load the profiler/solver/transforms."""
        path = tmp_path / "plan.json"
        PimFlow(PimFlowConfig(mechanism="pimflow")).build_plan(toy).save(path)
        code = (
            "import sys\n"
            "from repro.runtime.executor import PlanExecutor\n"
            f"result = PlanExecutor({str(path)!r}).run()\n"
            "assert result.makespan_us > 0\n"
            "loaded = [m for m in sys.modules\n"
            "          if m.startswith('repro.search')\n"
            "          or m.startswith('repro.transform')]\n"
            "assert not loaded, loaded\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


MEASUREMENTS = st.one_of(
    st.builds(
        RegionMeasurement,
        start=st.sampled_from(["n0", "n1", "n2"]),
        span=st.just(1),
        mode=st.just("gpu"),
        time_us=st.floats(0.1, 1e4, allow_nan=False),
        fingerprint=st.one_of(st.none(), st.text("abcdef0123456789",
                                                 min_size=8, max_size=8)),
    ),
    st.builds(
        RegionMeasurement,
        start=st.sampled_from(["n0", "n1"]),
        span=st.just(1),
        mode=st.just("split"),
        time_us=st.floats(0.1, 1e4, allow_nan=False),
        ratio_gpu=st.sampled_from([0.0, 0.3, 0.5, 0.9]),
    ),
    st.builds(
        lambda start, time_us, stages: RegionMeasurement(
            start, 2, "pipeline", time_us,
            chain=(start, start + "_next"), stages=stages),
        start=st.sampled_from(["n0", "n3"]),
        time_us=st.floats(0.1, 1e4, allow_nan=False),
        stages=st.integers(2, 4),
    ),
)


class TestTableRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(MEASUREMENTS, max_size=20))
    def test_save_load_preserves_measurements(self, tmp_path_factory, ms):
        table = MeasurementTable()
        for m in ms:
            table.add(m)
        path = tmp_path_factory.mktemp("tables") / "t.json"
        table.save(path)
        loaded = MeasurementTable.load(path)
        assert sorted(loaded.all_measurements(),
                      key=lambda m: (m.start, m.span, m.time_us)) == \
            sorted(table.all_measurements(),
                   key=lambda m: (m.start, m.span, m.time_us))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(MEASUREMENTS, max_size=20))
    def test_round_trip_preserves_best_choice(self, ms):
        table = MeasurementTable()
        for m in ms:
            table.add(m)
        loaded = MeasurementTable.from_dict(table.to_dict())
        for (start, span) in {(m.start, m.span) for m in ms}:
            assert loaded.best(start, span) == table.best(start, span)
