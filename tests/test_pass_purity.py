"""Clone-discipline lint: no registered pass may mutate its input graph.

Every pass contract says ``run(graph, ctx) -> Graph`` returns a
transformed *clone*.  This suite deep-snapshots the input (structure,
attributes, weight values, version) and asserts it is byte-identical
after the pass ran — on fixture graphs and on a real registry model,
for every registered pass including the parameterized back-end ones.
"""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.serialize import graph_to_dict
from repro.models import build_model
from repro.plan.fingerprint import graph_fingerprint
from repro.transform.passes import registered_passes, run_pass

#: Context options that let each parameterized pass run on the
#: fixture graphs below.
PASS_OPTIONS = {
    "mddp_split": {"node": "c0", "ratio_gpu": 0.5},
    "pipeline_chain": {"chain": ("pw1", "act1", "dw1"), "stages": 2},
    "apply_decisions": {"decisions": [
        {"mode": "split", "nodes": ["c0"], "ratio_gpu": 0.5},
    ]},
}

#: Parameterized passes only apply to graphs containing their target
#: nodes; map each to the fixture that has them.
PASS_FIXTURE = {
    "mddp_split": "small_conv_graph",
    "pipeline_chain": "pointwise_chain_graph",
    "apply_decisions": "small_conv_graph",
}


def _snapshot(graph: Graph):
    doc = graph_to_dict(graph, include_weights=True)
    weights = {k: np.array(v) for k, v in graph.initializers.items()}
    return doc, weights, graph.version, graph_fingerprint(graph)


def _assert_untouched(graph: Graph, snap, pass_name: str) -> None:
    doc, weights, version, fp = snap
    assert graph.version == version, f"{pass_name} touched its input"
    assert graph_fingerprint(graph) == fp, (
        f"{pass_name} structurally mutated its input")
    assert graph_to_dict(graph, include_weights=True) == doc, (
        f"{pass_name} mutated its input's serialized form")
    for k, v in weights.items():
        np.testing.assert_array_equal(
            graph.initializers[k], v,
            err_msg=f"{pass_name} mutated weight {k!r}")


@pytest.mark.parametrize(
    "pass_name", [info.name for info in registered_passes()])
def test_pass_never_mutates_input_fixture(pass_name, request):
    fixture = PASS_FIXTURE.get(pass_name, "small_conv_graph")
    graph = request.getfixturevalue(fixture)
    snap = _snapshot(graph)
    out = run_pass(pass_name, graph, **PASS_OPTIONS.get(pass_name, {}))
    assert out is not graph
    _assert_untouched(graph, snap, pass_name)


@pytest.mark.parametrize(
    "pass_name",
    [info.name for info in registered_passes() if not info.requires])
def test_standalone_pass_never_mutates_real_model(pass_name):
    graph = build_model("toy")
    snap = _snapshot(graph)
    run_pass(pass_name, graph)
    _assert_untouched(graph, snap, pass_name)


def test_fc_graph_cleanup_purity(fc_graph):
    """Non-conv graphs exercise different kernel paths; same contract."""
    snap = _snapshot(fc_graph)
    for info in registered_passes():
        if info.requires:
            continue
        run_pass(info.name, fc_graph)
    _assert_untouched(fc_graph, snap, "cleanup/fusion/memopt chain")
