"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.analysis.ratios import candidate_layer_names, mddp_ratio_distribution
from repro.models import build_model
from repro.pimflow import PimFlow, PimFlowConfig
from repro.runtime.numerical import execute


@pytest.fixture(scope="module")
def mobilenet():
    return build_model("mobilenet-v2")


@pytest.fixture(scope="module")
def mobilenet_results(mobilenet):
    out = {}
    for mech in ("gpu", "newton+", "newton++", "pimflow-md", "pimflow-pl",
                 "pimflow"):
        out[mech] = PimFlow(PimFlowConfig(mechanism=mech)).run(mobilenet)
    return out


class TestPaperShapeOnMobileNet:
    """The headline orderings of Fig. 9, on a real evaluated model."""

    def test_pimflow_beats_gpu_substantially(self, mobilenet_results):
        speedup = (mobilenet_results["gpu"].makespan_us
                   / mobilenet_results["pimflow"].makespan_us)
        assert speedup > 1.2  # paper: ~1.4x for MobileNetV2

    def test_mechanism_ordering(self, mobilenet_results):
        r = mobilenet_results
        assert r["newton++"].makespan_us <= r["newton+"].makespan_us
        assert r["pimflow-md"].makespan_us <= r["newton++"].makespan_us
        assert r["pimflow"].makespan_us <= r["pimflow-md"].makespan_us * 1.001
        assert r["pimflow"].makespan_us <= r["pimflow-pl"].makespan_us * 1.001

    def test_pimflow_energy_savings(self, mobilenet_results):
        """Fig. 12: PIMFlow consumes less energy than the GPU baseline."""
        assert mobilenet_results["pimflow"].energy.total_mj < \
            mobilenet_results["gpu"].energy.total_mj

    def test_devices_overlap_under_pimflow(self, mobilenet_results):
        assert mobilenet_results["pimflow"].overlap_us > 0


class TestCompiledSemantics:
    """Every mechanism's compiled graph computes the original function."""

    @pytest.mark.parametrize("mechanism", ["newton++", "pimflow-md",
                                           "pimflow-pl", "pimflow"])
    def test_toy_compiled_semantics(self, mechanism, rng):
        toy = build_model("toy")
        flow = PimFlow(PimFlowConfig(mechanism=mechanism))
        compiled = flow.compile(toy)
        feed = {"input": rng.standard_normal((1, 56, 56, 3)) * 0.1}
        ref = execute(toy, feed)
        out = execute(compiled.graph, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=5e-3, atol=5e-3)


class TestTable2Shape:
    def test_ratio_distribution_shape(self, mobilenet):
        """Table 2: most candidates split or fully offload; few-to-none
        stay fully on GPU."""
        flow = PimFlow(PimFlowConfig(mechanism="pimflow-md"))
        prepared = flow.prepare(mobilenet)
        compiled = flow.compile(prepared)
        dist = mddp_ratio_distribution(compiled.decisions,
                                       candidate_layer_names(prepared))
        assert sum(dist.values()) == pytest.approx(1.0)
        # Strongly PIM-leaning placements dominate (paper: 41% at full
        # offload across all five models).
        assert dist[0] + dist[10] > 0.25
        # Splitting happens across intermediate ratios (paper: 58%).
        middle = sum(v for k, v in dist.items() if 0 < k < 100)
        assert middle > 0.3
        # Few candidates stay fully on the GPU (paper: 0%).
        assert dist[100] < 0.25


class TestChannelSensitivity:
    """Fig. 13 shape: performance peaks at a middle split."""

    def test_extreme_splits_are_worse(self, mobilenet):
        times = {}
        from repro.memsys.system import MemorySystem
        for pim_channels in (4, 16, 28):
            cfg = PimFlowConfig(mechanism="pimflow-md",
                                memory=MemorySystem(32, pim_channels))
            times[pim_channels] = PimFlow(cfg).run(mobilenet).makespan_us
        assert times[16] < times[4]
        assert times[16] < times[28]


class TestPredictionConsistency:
    """The DP's additive prediction tracks the scheduled makespan."""

    @pytest.mark.parametrize("mechanism", ["newton++", "pimflow-md",
                                           "pimflow"])
    def test_predicted_close_to_scheduled(self, mechanism, mobilenet):
        flow = PimFlow(PimFlowConfig(mechanism=mechanism))
        compiled = flow.compile(mobilenet)
        scheduled = flow.engine.run(compiled.graph).makespan_us
        # Scheduling can only beat the additive prediction via
        # cross-region overlap; mispredictions beyond ~15% would mean
        # the profiled regions don't compose.
        assert scheduled <= compiled.predicted_time_us * 1.05
        assert scheduled >= compiled.predicted_time_us * 0.80
