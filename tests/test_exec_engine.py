"""Unit tests for the repro.exec job engine.

Worker functions used with jobs > 1 must be module-level (picklable);
several below simulate misbehaviour: raising, crashing the worker
process outright, or hanging past the timeout.
"""

from __future__ import annotations

import os
import pickle
import signal
import time

import pytest

from repro.exec import (
    STATUS_FAILED,
    STATUS_OK,
    CallbackReporter,
    JobEngine,
    JobResult,
    JobSpec,
    ProgressSnapshot,
    resolve_worker_count,
)


def make_spec(job_id, kind="ok", region=None):
    return JobSpec(job_id=job_id, kind=kind, fingerprint=f"fp{job_id}",
                   config_fingerprint="cfg", region=region or {},
                   target=("n",))


def ok_worker(spec):
    return JobResult(job_id=spec.job_id, fingerprint=spec.fingerprint,
                     status=STATUS_OK, entries=({"id": spec.job_id},),
                     worker_pid=os.getpid())


def always_raises(spec):
    raise RuntimeError(f"boom {spec.job_id}")


def flaky_worker(spec):
    """Fails the first attempt of each job, succeeds afterwards (a
    filesystem sentinel survives across worker processes)."""
    sentinel = os.path.join(spec.region["dir"], f"seen{spec.job_id}")
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("1")
        raise RuntimeError("first attempt fails")
    return ok_worker(spec)


def crash_worker(spec):
    """SIGKILLs its own worker process for 'crash' jobs."""
    if spec.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    return ok_worker(spec)


def sleepy_worker(spec):
    if spec.kind == "sleep":
        time.sleep(60)
    return ok_worker(spec)


class TestJobTypes:
    def test_spec_roundtrip(self):
        spec = JobSpec(job_id=3, kind="split", fingerprint="abc",
                       config_fingerprint="cfg", region={"name": "g"},
                       target=("c0",), ratios=(0.0, 0.5, 1.0), stages=3,
                       engine_spec={"host_io": False})
        assert JobSpec.from_dict(spec.to_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_result_roundtrip(self):
        result = JobResult(job_id=3, fingerprint="abc", status=STATUS_FAILED,
                           entries=({"time_us": 1.0},), error="boom",
                           attempts=2, runs=4, elapsed_s=0.1, worker_pid=7)
        assert JobResult.from_dict(result.to_dict()) == result
        assert not result.ok

    def test_resolve_worker_count(self):
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count(7) == 7
        assert resolve_worker_count(0) >= 1
        with pytest.raises(ValueError):
            resolve_worker_count(-1)


class TestInlineMode:
    def test_results_in_spec_order(self):
        engine = JobEngine(ok_worker, jobs=1)
        results = engine.run([make_spec(i) for i in range(5)])
        assert [r.job_id for r in results] == list(range(5))
        assert all(r.ok for r in results)

    def test_exception_recorded_after_retries(self):
        engine = JobEngine(always_raises, jobs=1, retries=2, backoff_s=0.0)
        results = engine.run([make_spec(0)])
        assert results[0].status == STATUS_FAILED
        assert results[0].attempts == 3
        assert "boom 0" in results[0].error

    def test_flaky_job_retried_to_success(self, tmp_path):
        engine = JobEngine(flaky_worker, jobs=1, retries=2, backoff_s=0.0)
        results = engine.run([make_spec(0, region={"dir": str(tmp_path)})])
        assert results[0].ok
        assert results[0].attempts == 2


class TestParallelMode:
    def test_results_in_spec_order(self):
        engine = JobEngine(ok_worker, jobs=2)
        results = engine.run([make_spec(i) for i in range(8)])
        assert [r.job_id for r in results] == list(range(8))
        assert all(r.ok for r in results)

    def test_worker_exception_is_retried_then_recorded(self):
        engine = JobEngine(always_raises, jobs=2, retries=1, backoff_s=0.0)
        results = engine.run([make_spec(i) for i in range(3)])
        assert all(r.status == STATUS_FAILED for r in results)
        assert all(r.attempts == 2 for r in results)

    def test_flaky_jobs_recover(self, tmp_path):
        engine = JobEngine(flaky_worker, jobs=2, retries=2, backoff_s=0.0)
        specs = [make_spec(i, region={"dir": str(tmp_path)})
                 for i in range(4)]
        results = engine.run(specs)
        assert all(r.ok for r in results)
        assert all(r.attempts >= 2 for r in results)

    def test_killed_worker_is_isolated(self):
        """A SIGKILLed worker yields a failed record for the culprit and
        completed results for everything else — never a hang."""
        engine = JobEngine(crash_worker, jobs=2, retries=2, backoff_s=0.0)
        specs = [make_spec(0, kind="crash")] + \
                [make_spec(i) for i in range(1, 6)]
        results = engine.run(specs)
        assert results[0].status == STATUS_FAILED
        assert "died" in results[0].error
        assert all(r.ok for r in results[1:])

    def test_timeout_recorded_and_pool_recovers(self):
        engine = JobEngine(sleepy_worker, jobs=2, retries=0, backoff_s=0.0,
                           timeout_s=1.0)
        specs = [make_spec(0, kind="sleep")] + \
                [make_spec(i) for i in range(1, 4)]
        t0 = time.monotonic()
        results = engine.run(specs)
        assert time.monotonic() - t0 < 30  # never waits for the sleeper
        assert results[0].status == STATUS_FAILED
        assert "timed out" in results[0].error
        assert all(r.ok for r in results[1:])


class TestProgress:
    def test_lifecycle_events_and_counts(self):
        events = []
        reporter = CallbackReporter(
            lambda event, snap, detail: events.append((event, snap, detail)))
        engine = JobEngine(ok_worker, jobs=1, progress=reporter)
        engine.run([make_spec(i) for i in range(3)], cached=2)
        names = [e[0] for e in events]
        assert names[0] == "start" and names[-1] == "finish"
        assert names.count("job_done") == 3
        final = events[-1][1]
        assert final.total == 3 and final.completed == 3
        assert final.failed == 0 and final.cached == 2

    def test_retry_events(self):
        events = []
        reporter = CallbackReporter(
            lambda event, snap, detail: events.append(event))
        engine = JobEngine(always_raises, jobs=1, retries=2, backoff_s=0.0,
                           progress=reporter)
        engine.run([make_spec(0)])
        assert events.count("retry") == 2

    def test_snapshot_eta(self):
        snap = ProgressSnapshot(total=4, completed=1, failed=1, cached=0,
                                elapsed_s=2.0)
        assert snap.done == 2 and snap.remaining == 2
        assert snap.eta_s == pytest.approx(2.0)
        done = ProgressSnapshot(total=4, completed=4, failed=0, cached=0,
                                elapsed_s=2.0)
        assert done.eta_s == 0.0
        fresh = ProgressSnapshot(total=4, completed=0, failed=0, cached=0,
                                 elapsed_s=0.0)
        assert fresh.eta_s is None
        assert "jobs" in snap.describe()
