"""End-to-end parallel profiling tests: determinism vs the serial path,
cache interoperation, fault tolerance, and the CLI surface.

The injected worker functions are module-level so worker processes can
unpickle them by reference.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.models import build_model
from repro.pimflow import Compiler, PimFlow, PimFlowConfig
from repro.plan.cache import ProfileCache
from repro.search.profiler import RegionProfiler
from repro.search.table import MeasurementTable


def compile_model(model, jobs, cache=None):
    flow = PimFlow(PimFlowConfig(mechanism="pimflow", jobs=jobs), cache=cache)
    graph = flow.prepare(build_model(model))
    table = flow.profile(graph)
    predicted, decisions = flow.solve(graph, table)
    return flow, graph, table, predicted, decisions


def fail_pipeline_jobs(spec):
    """Delegates to the real worker except for pipeline jobs, which
    always raise — simulating a simulator crash on one region class."""
    from repro.exec.worker import execute_job
    if spec.kind == "pipeline":
        raise RuntimeError("injected pipeline failure")
    return execute_job(spec)


def hang_pipeline_jobs(spec):
    from repro.exec.worker import execute_job
    if spec.kind == "pipeline":
        time.sleep(60)
    return execute_job(spec)


def kill_pipeline_workers(spec):
    """SIGKILLs the worker process on pipeline jobs — the hardest
    failure mode: the pool breaks and must be rebuilt."""
    import os
    import signal
    from repro.exec.worker import execute_job
    if spec.kind == "pipeline":
        os.kill(os.getpid(), signal.SIGKILL)
    return execute_job(spec)


class TestDeterminism:
    """ISSUE satellite: serial and parallel profiling are byte-identical."""

    @pytest.mark.parametrize("model", ["toy", "mobilenet-v2"])
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_table_and_decisions_identical(self, model, jobs):
        _, _, t_serial, p_serial, d_serial = compile_model(model, 1)
        _, _, t_par, p_par, d_par = compile_model(model, jobs)
        assert t_par.to_dict() == t_serial.to_dict()
        assert p_par == p_serial
        assert [d.to_dict() for d in d_par] == \
               [d.to_dict() for d in d_serial]

    def test_plan_identical_modulo_provenance(self):
        model = build_model("toy")

        def plan_json(jobs):
            plan = PimFlow(PimFlowConfig(jobs=jobs)).build_plan(
                model, model_name="toy")
            data = plan.to_dict()
            data["provenance"].pop("created_at")
            # wall-clock per-pass timings are provenance, not structure
            for record in data["provenance"].get("passes", []):
                record.pop("wall_ms")
            return json.dumps(data, sort_keys=True)

        assert plan_json(2) == plan_json(1)

    def test_parallel_credits_run_count(self):
        flow, _, _, _, _ = compile_model("toy", 2)
        assert flow.engine.run_count > 0

    def test_profile_summary_populated(self):
        flow, _, _, _, _ = compile_model("toy", 2)
        summary = flow.compiler.last_profile_summary
        assert summary["requests"] > 0
        assert summary["jobs_run"] > 0
        assert summary["workers"] == 2
        assert summary["failed"] == 0
        assert summary["failed_jobs"] == []
        assert summary["wall_s"] > 0


class TestCacheInterop:
    """Serial and parallel runs share one cache in both directions."""

    def test_parallel_cold_then_serial_warm(self, tmp_path):
        _, _, t_cold, _, _ = compile_model(
            "toy", 2, cache=ProfileCache(tmp_path / "cache"))
        flow, _, t_warm, _, _ = compile_model(
            "toy", 1, cache=ProfileCache(tmp_path / "cache"))
        assert t_warm.to_dict() == t_cold.to_dict()
        assert flow.engine.run_count == 0  # fully served from disk

    def test_serial_cold_then_parallel_warm(self, tmp_path):
        _, _, t_cold, _, _ = compile_model(
            "toy", 1, cache=ProfileCache(tmp_path / "cache"))
        flow, _, t_warm, _, _ = compile_model(
            "toy", 2, cache=ProfileCache(tmp_path / "cache"))
        assert t_warm.to_dict() == t_cold.to_dict()
        assert flow.engine.run_count == 0
        assert flow.compiler.last_profile_summary["jobs_run"] == 0

    def test_cold_run_cache_stats_mode_independent(self, tmp_path):
        """Duplicate structures count as hits in both modes (serially
        they literally are; in parallel they rebind the owner job)."""
        flow_s, _, _, _, _ = compile_model(
            "toy", 1, cache=ProfileCache(tmp_path / "a"))
        flow_p, _, _, _, _ = compile_model(
            "toy", 2, cache=ProfileCache(tmp_path / "b"))
        assert flow_s.cache.stats()["hits"] > 0
        assert flow_p.cache.stats()["hits"] == flow_s.cache.stats()["hits"]
        assert flow_p.cache.stats()["misses"] == flow_s.cache.stats()["misses"]

    def test_repro_jobs_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert Compiler(PimFlowConfig()).jobs == 3
        assert Compiler(PimFlowConfig(jobs=1)).jobs == 1  # config wins
        monkeypatch.setenv("REPRO_JOBS", "bogus")
        assert Compiler(PimFlowConfig()).jobs == 1
        monkeypatch.setenv("REPRO_JOBS", "-3")
        assert Compiler(PimFlowConfig()).jobs == 1

    def test_jobs_not_in_config_fingerprint(self):
        serial = Compiler(PimFlowConfig(jobs=1)).config_fingerprint
        parallel = Compiler(PimFlowConfig(jobs=4)).config_fingerprint
        assert serial == parallel


class TestFaultTolerance:
    """ISSUE satellite: injected worker failures are retried, recorded,
    and never corrupt the cache or abort the search."""

    def _profile(self, worker_fn, tmp_path, **kwargs):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        graph = flow.prepare(build_model("toy"))
        requests, _ = flow.compiler._profile_requests(graph)
        profiler = RegionProfiler(
            flow.engine, ProfileCache(tmp_path / "cache"),
            flow.compiler.config_fingerprint, jobs=2,
            engine_spec=flow.compiler.runtime_spec(),
            worker_fn=worker_fn, **kwargs)
        results = profiler.profile_requests(graph, requests)
        return flow, graph, requests, profiler, results

    def test_exceptions_retried_then_recorded(self, tmp_path):
        flow, graph, requests, profiler, results = self._profile(
            fail_pipeline_jobs, tmp_path, retries=1)
        pipeline_idx = [i for i, r in enumerate(requests)
                        if r.kind == "pipeline"]
        assert pipeline_idx  # toy under 'pimflow' has pipeline candidates

        # Failures were retried (retries+1 attempts) and recorded.
        assert profiler.failed_jobs
        assert all(r.attempts == 2 for r in profiler.failed_jobs)
        assert all("injected" in r.error for r in profiler.failed_jobs)
        assert profiler.last_stats["failed"] == len(profiler.failed_jobs)

        # The batch completed: every request answered, failed ones empty.
        assert len(results) == len(requests)
        for i in pipeline_idx:
            assert results[i] == []

        # The search completes on the partial table.
        table = MeasurementTable()
        for measurements in results:
            for m in measurements:
                table.add(m)
        predicted, decisions = flow.solve(graph, table)
        assert predicted > 0 and decisions

        # The cache holds nothing for the failed regions (no corruption).
        cache = ProfileCache(tmp_path / "cache")
        fp = flow.compiler.config_fingerprint
        for failed in profiler.failed_jobs:
            assert cache.lookup(fp, failed.fingerprint) is None

        # A later healthy serial run over the same cache fills the gap
        # and matches a clean serial run exactly.
        healed = RegionProfiler(flow.engine, ProfileCache(tmp_path / "cache"),
                                fp).profile_requests(graph, requests)
        clean = RegionProfiler(flow.engine).profile_requests(graph, requests)
        assert [[m.to_dict() for m in ms] for ms in healed] == \
               [[m.to_dict() for m in ms] for ms in clean]

    def test_killed_workers_recorded_and_cache_intact(self, tmp_path):
        flow, graph, requests, profiler, results = self._profile(
            kill_pipeline_workers, tmp_path, retries=1)
        assert profiler.failed_jobs
        assert all("died" in r.error for r in profiler.failed_jobs)
        assert len(results) == len(requests)

        # Every surviving cache entry is readable — nothing half-written.
        cache = ProfileCache(tmp_path / "cache")
        fp = flow.compiler.config_fingerprint
        split_fps = {m.fingerprint for i, r in enumerate(requests)
                     if r.kind == "split" for m in results[i]}
        assert split_fps
        for region_fp in split_fps:
            assert cache.lookup(fp, region_fp) is not None

        # A healing re-profile over the intact cache fills every gap
        # (collateral jobs can exhaust attempts too when the pool keeps
        # breaking) and the search completes.
        healed = RegionProfiler(flow.engine, cache, fp).profile_requests(
            graph, requests)
        table = MeasurementTable()
        for measurements in healed:
            for m in measurements:
                table.add(m)
        predicted, decisions = flow.solve(graph, table)
        assert predicted > 0 and decisions

    def test_timeouts_recorded_without_hanging(self, tmp_path):
        t0 = time.monotonic()
        flow, graph, requests, profiler, results = self._profile(
            hang_pipeline_jobs, tmp_path, retries=0, timeout_s=1.0)
        assert time.monotonic() - t0 < 60  # never waits out the sleepers
        assert profiler.failed_jobs
        assert all("timed out" in r.error for r in profiler.failed_jobs)
        assert len(results) == len(requests)
        split_idx = [i for i, r in enumerate(requests) if r.kind == "split"]
        assert all(results[i] for i in split_idx)  # innocents completed


class TestCli:
    def test_jobs_flag_summary_and_progress(self, tmp_path, capsys):
        assert main(["-m=profile", "-t=split", "-n=toy", "--jobs=2",
                     f"--workdir={tmp_path}"]) == 0
        captured = capsys.readouterr()
        assert "[profile]" in captured.out
        assert "worker(s)" in captured.out
        assert "jobs" in captured.err  # ConsoleReporter progress lines

    def test_serial_still_prints_summary(self, tmp_path, capsys):
        # --jobs=1 pins serial mode even when REPRO_JOBS is set.
        assert main(["-m=profile", "-t=split", "-n=toy", "--jobs=1",
                     f"--workdir={tmp_path}"]) == 0
        captured = capsys.readouterr()
        assert "[profile]" in captured.out
        assert captured.err == ""  # no progress stream in serial mode

    def test_solve_prints_phase_line(self, tmp_path, capsys):
        base = ["-n=toy", f"--workdir={tmp_path}"]
        assert main(["-m=profile", "-t=split"] + base) == 0
        assert main(["-m=profile", "-t=pipeline"] + base) == 0
        assert main(["-m=solve"] + base) == 0
        assert "[solve]" in capsys.readouterr().out
