"""Tests for command-trace serialization."""

import pytest

from repro.codegen.generator import generate_trace
from repro.codegen.trace_io import (
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.lowering.im2col import LoweredGemv
from repro.pim.config import NEWTON_PLUS_PLUS, PimConfig
from repro.pim.simulator import simulate_trace

CFG = PimConfig()


@pytest.fixture
def trace():
    gemv = LoweredGemv(rows=12, k=96, n=48, contiguous_k=96, strided=False)
    return generate_trace(gemv, CFG, NEWTON_PLUS_PLUS)


class TestRoundTrip:
    def test_dict_round_trip(self, trace):
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.num_commands == trace.num_commands
        assert rebuilt.counts() == trace.counts()
        for ch, prog in trace.programs.items():
            assert rebuilt.programs[ch] == prog

    def test_file_round_trip(self, tmp_path, trace):
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        rebuilt = load_trace(path)
        assert rebuilt.programs == trace.programs

    def test_timing_identical_after_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        rebuilt = load_trace(path)
        assert simulate_trace(rebuilt, CFG).cycles == \
            simulate_trace(trace, CFG).cycles

    def test_deps_preserved(self, trace):
        rebuilt = trace_from_dict(trace_to_dict(trace))
        for ch, prog in trace.programs.items():
            for original, copy in zip(prog, rebuilt.programs[ch]):
                assert original.deps == copy.deps


class TestErrorHandling:
    def test_unknown_kind_rejected(self, trace):
        data = trace_to_dict(trace)
        first_channel = next(iter(data["channels"]))
        data["channels"][first_channel][0]["kind"] = "TELEPORT"
        with pytest.raises(ValueError):
            trace_from_dict(data)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "missing.json")
