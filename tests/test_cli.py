"""Tests for the artifact-style CLI."""

import json

import pytest

from repro.cli import POLICIES, _preprocess_argv, main


class TestArgvPreprocessing:
    def test_single_dash_equals_split(self):
        assert _preprocess_argv(["-m=profile", "-n=toy"]) == \
            ["-m", "profile", "-n", "toy"]

    def test_double_dash_untouched(self):
        assert _preprocess_argv(["--policy=PIMFlow"]) == ["--policy=PIMFlow"]

    def test_plain_args_untouched(self):
        assert _preprocess_argv(["-m", "run"]) == ["-m", "run"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["-m=list"]) == 0
        out = capsys.readouterr().out
        assert "toy" in out and "resnet-50" in out

    def test_unknown_net(self, capsys):
        assert main(["-m=run", "-n=lenet"]) == 2

    def test_net_aliases_normalized(self, tmp_path, capsys):
        workdir = str(tmp_path / "out")
        assert main(["-m=run", "-n=Toy", f"--workdir={workdir}"]) == 0
        assert "toy [" in capsys.readouterr().out

    def test_full_workflow(self, tmp_path, capsys):
        workdir = str(tmp_path / "out")
        base = ["-n=toy", f"--workdir={workdir}"]
        assert main(["-m=profile", "-t=split"] + base) == 0
        assert main(["-m=profile", "-t=pipeline"] + base) == 0
        assert main(["-m=solve"] + base) == 0
        assert main(["-m=run", "--gpu_only"] + base) == 0
        assert main(["-m=run"] + base) == 0
        out = capsys.readouterr().out
        assert "GPU baseline" in out
        assert "PIMFlow" in out

        summary = json.loads(
            (tmp_path / "out" / "toy" / "solve_summary.json").read_text())
        assert summary["predicted_time_us"] > 0
        assert summary["decisions"]

    def test_run_without_profiles_compiles_inline(self, tmp_path, capsys):
        assert main(["-m=run", "-n=toy",
                     f"--workdir={tmp_path / 'fresh'}"]) == 0

    def test_policies_cover_evaluated_mechanisms(self):
        assert set(POLICIES) == {"Newton", "Newton+", "Newton++", "MDDP",
                                 "Pipeline", "PIMFlow"}

    def test_policy_run(self, tmp_path, capsys):
        assert main(["-m=run", "-n=toy", "--policy=Newton++",
                     f"--workdir={tmp_path}"]) == 0
        assert "Newton++" in capsys.readouterr().out

    def test_stat(self, tmp_path, capsys):
        assert main(["-m=stat", "-n=toy", f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "Split ratio to GPU" in out

    def test_custom_channels(self, tmp_path, capsys):
        assert main(["-m=run", "-n=toy", "--pim_channels=8",
                     f"--workdir={tmp_path}"]) == 0

    def test_trace_default_layer(self, tmp_path, capsys):
        assert main(["-m=trace", "-n=toy", f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "commands" in out and "cycles" in out
        traces = list((tmp_path / "toy").glob("trace_*.json"))
        assert len(traces) == 1

    def test_trace_named_layer(self, tmp_path, capsys):
        assert main(["-m=trace", "-n=toy", "--layer=b0_expand",
                     f"--workdir={tmp_path}"]) == 0
        assert "b0_expand" in capsys.readouterr().out

    def test_trace_unknown_layer(self, tmp_path, capsys):
        assert main(["-m=trace", "-n=toy", "--layer=nope",
                     f"--workdir={tmp_path}"]) == 2

    def test_report(self, tmp_path, capsys):
        assert main(["-m=report", "-n=toy", f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "decisions:" in out
        assert "schedule" in out
        assert "GPU" in out and "PIM" in out

    def test_report_policy(self, tmp_path, capsys):
        assert main(["-m=report", "-n=toy", "--policy=Newton++",
                     f"--workdir={tmp_path}"]) == 0
        assert "Newton++" in capsys.readouterr().out


class TestServing:
    def test_stat_json(self, tmp_path, capsys):
        assert main(["-m=stat", "-n=toy", "--json",
                     f"--workdir={tmp_path}"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["model"] == "toy"
        assert data["predicted_time_us"] > 0
        assert data["decisions"] >= 1
        assert data["buffer_plan"]["arena_bytes"] > 0

    def test_stat_plan_json(self, tmp_path, capsys):
        plan_path = tmp_path / "toy.plan.json"
        assert main(["-m=compile", "-n=toy", f"--plan={plan_path}",
                     f"--workdir={tmp_path}"]) == 0
        capsys.readouterr()
        assert main(["-m=stat", f"--plan={plan_path}", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["model"] == "toy"
        assert data["buffer_plan"]["arena_bytes"] > 0

    def test_serve_smoke(self, tmp_path, capsys):
        assert main(["-m=serve", "-n=toy", "--clients=2", "--requests=2",
                     "--json", f"--workdir={tmp_path}"]) == 0
        data = json.loads(capsys.readouterr().out)
        (load,) = data["load"]
        assert load["offered"] == 4
        assert load["completed"] == 4
        assert data["server"]["completed"] == 4

    def test_serve_from_plan(self, tmp_path, capsys):
        plan_path = tmp_path / "toy.plan.json"
        assert main(["-m=compile", "-n=toy", f"--plan={plan_path}",
                     "--with_weights", f"--workdir={tmp_path}"]) == 0
        capsys.readouterr()
        assert main(["-m=serve", "-n=toy", f"--plan={plan_path}",
                     "--clients=2", "--requests=1",
                     f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "toy: 2/2 ok" in out
        assert "[serve]" in out

    def test_serve_rejects_unknown_net_in_list(self, tmp_path, capsys):
        assert main(["-m=serve", "-n=toy,lenet",
                     f"--workdir={tmp_path}"]) == 2
        assert "lenet" in capsys.readouterr().err

    def test_bench_serve_smoke(self, tmp_path, capsys):
        assert main(["-m=bench-serve", "-n=toy", "--clients=4",
                     "--requests=1", "--max-batch=4", "--json",
                     f"--workdir={tmp_path}"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mechanism"] == "gpu"  # A/B defaults to GPU baseline
        assert data["byte_identical"] is True
        assert data["batch1"]["completed"] == 4
        assert data["dynamic"]["completed"] == 4
        assert data["device_win_ceiling"] > 1.0


class TestPassObservability:
    def test_passes_mode_lists_registry(self, capsys):
        assert main(["-m=passes"]) == 0
        out = capsys.readouterr().out
        for name in ("fold_constants", "eliminate_dead_nodes",
                     "fold_batchnorm", "fuse_activations", "optimize_memory",
                     "apply_decisions", "mddp_split", "pipeline_chain"):
            assert name in out
        assert "idempotent" in out
        assert "requires decisions" in out

    def test_compile_prints_pass_summary(self, tmp_path, capsys):
        assert main(["-m=compile", "-n=toy", f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "[compile]" in out and "passes" in out
        assert "fuse_activations" in out

    def test_compile_verify_passes(self, tmp_path, capsys):
        assert main(["-m=compile", "-n=toy", "--verify-passes",
                     f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "6 verified" in out

    def test_compile_dump_ir(self, tmp_path, capsys):
        ir = tmp_path / "ir"
        assert main(["-m=compile", "-n=toy", f"--dump-ir={ir}",
                     f"--workdir={tmp_path / 'out'}"]) == 0
        files = sorted(p.name for p in ir.iterdir())
        assert files[0] == "00_fold_constants.json"
        assert any("apply_decisions" in f for f in files)
        json.loads((ir / files[0]).read_text())  # well-formed IR snapshots

    def test_plan_records_pass_log(self, tmp_path):
        plan_path = tmp_path / "toy.plan.json"
        assert main(["-m=compile", "-n=toy", f"--plan={plan_path}",
                     f"--workdir={tmp_path}"]) == 0
        data = json.loads(plan_path.read_text())
        log = data["provenance"]["passes"]
        assert [r["name"] for r in log] == [
            "fold_constants", "eliminate_dead_nodes", "fold_batchnorm",
            "fuse_activations", "apply_decisions", "optimize_memory"]
        assert all(r["wall_ms"] >= 0 for r in log)

    def test_stat_shows_pass_table(self, tmp_path, capsys):
        assert main(["-m=stat", "-n=toy", f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "Pass pipeline" in out
        assert "optimize_memory" in out

    def test_stat_plan(self, tmp_path, capsys):
        plan_path = tmp_path / "toy.plan.json"
        assert main(["-m=compile", "-n=toy", "--verify-passes",
                     f"--plan={plan_path}", f"--workdir={tmp_path}"]) == 0
        capsys.readouterr()
        assert main(["-m=stat", f"--plan={plan_path}"]) == 0
        out = capsys.readouterr().out
        assert "[plan:pimflow]" in out
        assert "Pass pipeline" in out
        assert "[verified]" in out
        assert "Buffer plan" in out

    def test_stat_plan_missing_file(self, tmp_path, capsys):
        assert main(["-m=stat", f"--plan={tmp_path / 'nope.json'}"]) == 2
        assert "plan file not found" in capsys.readouterr().err

    def test_solve_prints_pass_summary(self, tmp_path, capsys):
        base = ["-n=toy", f"--workdir={tmp_path}"]
        assert main(["-m=profile", "-t=split"] + base) == 0
        assert main(["-m=solve"] + base) == 0
        out = capsys.readouterr().out
        assert "[compile]" in out and "apply_decisions" in out


def _makespan(line):
    """Pull the makespan out of a '<model> [...]: X us, ...' line."""
    return float(line.split("]:")[1].split("us")[0])


class TestCompileOnce:
    def test_compile_then_run_plan_matches_direct(self, tmp_path, capsys):
        plan_path = tmp_path / "toy.plan.json"
        base = ["-n=toy", f"--workdir={tmp_path / 'out'}"]
        assert main(["-m=run"] + base) == 0
        direct_line = [line for line in capsys.readouterr().out.splitlines()
                       if "[PIMFlow]" in line][0]
        assert main(["-m=compile", f"--plan={plan_path}"] + base) == 0
        out = capsys.readouterr().out
        assert "compiled toy [PIMFlow]" in out
        assert plan_path.exists()
        assert main(["-m=run", f"--plan={plan_path}"] + base) == 0
        plan_line = capsys.readouterr().out.strip().splitlines()[-1]
        assert "[plan:pimflow]" in plan_line
        assert _makespan(plan_line) == _makespan(direct_line)

    def test_compile_default_plan_location(self, tmp_path, capsys):
        workdir = tmp_path / "out"
        assert main(["-m=compile", "-n=toy", f"--workdir={workdir}"]) == 0
        assert (workdir / "toy" / "plan.json").exists()

    def test_compile_with_traces(self, tmp_path, capsys):
        plan_path = tmp_path / "toy.plan.json"
        assert main(["-m=compile", "-n=toy", "--traces",
                     f"--plan={plan_path}", f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        n_traces = int(out.split("us, ")[1].split(" traces")[0])
        assert n_traces > 0
        data = json.loads(plan_path.read_text())
        assert len(data["traces"]) == n_traces

    def test_compile_excludes_weights_by_default(self, tmp_path):
        lean = tmp_path / "lean.json"
        fat = tmp_path / "fat.json"
        args = ["-m=compile", "-n=toy", f"--workdir={tmp_path}"]
        assert main(args + [f"--plan={lean}"]) == 0
        assert main(args + [f"--plan={fat}", "--with_weights"]) == 0
        assert lean.stat().st_size < fat.stat().st_size

    def test_compile_reports_cache_stats(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["-m=compile", "-n=toy", f"--workdir={tmp_path / 'out'}",
                f"--cache-dir={cache}"]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "profile cache:" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm

    def test_stat_reports_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["-m=stat", "-n=toy", f"--workdir={tmp_path}",
                     f"--cache-dir={cache}"]) == 0
        out = capsys.readouterr().out
        assert "profile cache:" in out
        assert "last profile run:" in out

    def test_run_plan_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["-m=run", "-n=toy",
                     f"--plan={tmp_path / 'nope.json'}",
                     f"--workdir={tmp_path}"]) == 2
        assert "plan file not found" in capsys.readouterr().err

    def test_run_plan_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["-m=run", "-n=toy", f"--plan={bad}",
                     f"--workdir={tmp_path}"]) == 2
        assert "cannot load plan" in capsys.readouterr().err

    def test_run_plan_future_version_fails_cleanly(self, tmp_path, capsys):
        plan_path = tmp_path / "toy.plan.json"
        assert main(["-m=compile", "-n=toy", f"--plan={plan_path}",
                     f"--workdir={tmp_path}"]) == 0
        data = json.loads(plan_path.read_text())
        data["version"] = 99
        plan_path.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["-m=run", "-n=toy", f"--plan={plan_path}",
                     f"--workdir={tmp_path}"]) == 2
        assert "unsupported plan version" in capsys.readouterr().err
