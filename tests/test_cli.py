"""Tests for the artifact-style CLI."""

import json

import pytest

from repro.cli import POLICIES, _preprocess_argv, main


class TestArgvPreprocessing:
    def test_single_dash_equals_split(self):
        assert _preprocess_argv(["-m=profile", "-n=toy"]) == \
            ["-m", "profile", "-n", "toy"]

    def test_double_dash_untouched(self):
        assert _preprocess_argv(["--policy=PIMFlow"]) == ["--policy=PIMFlow"]

    def test_plain_args_untouched(self):
        assert _preprocess_argv(["-m", "run"]) == ["-m", "run"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["-m=list"]) == 0
        out = capsys.readouterr().out
        assert "toy" in out and "resnet-50" in out

    def test_unknown_net(self, capsys):
        assert main(["-m=run", "-n=lenet"]) == 2

    def test_full_workflow(self, tmp_path, capsys):
        workdir = str(tmp_path / "out")
        base = ["-n=toy", f"--workdir={workdir}"]
        assert main(["-m=profile", "-t=split"] + base) == 0
        assert main(["-m=profile", "-t=pipeline"] + base) == 0
        assert main(["-m=solve"] + base) == 0
        assert main(["-m=run", "--gpu_only"] + base) == 0
        assert main(["-m=run"] + base) == 0
        out = capsys.readouterr().out
        assert "GPU baseline" in out
        assert "PIMFlow" in out

        summary = json.loads(
            (tmp_path / "out" / "toy" / "solve_summary.json").read_text())
        assert summary["predicted_time_us"] > 0
        assert summary["decisions"]

    def test_run_without_profiles_compiles_inline(self, tmp_path, capsys):
        assert main(["-m=run", "-n=toy",
                     f"--workdir={tmp_path / 'fresh'}"]) == 0

    def test_policies_cover_evaluated_mechanisms(self):
        assert set(POLICIES) == {"Newton", "Newton+", "Newton++", "MDDP",
                                 "Pipeline", "PIMFlow"}

    def test_policy_run(self, tmp_path, capsys):
        assert main(["-m=run", "-n=toy", "--policy=Newton++",
                     f"--workdir={tmp_path}"]) == 0
        assert "Newton++" in capsys.readouterr().out

    def test_stat(self, tmp_path, capsys):
        assert main(["-m=stat", "-n=toy", f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "Split ratio to GPU" in out

    def test_custom_channels(self, tmp_path, capsys):
        assert main(["-m=run", "-n=toy", "--pim_channels=8",
                     f"--workdir={tmp_path}"]) == 0

    def test_trace_default_layer(self, tmp_path, capsys):
        assert main(["-m=trace", "-n=toy", f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "commands" in out and "cycles" in out
        traces = list((tmp_path / "toy").glob("trace_*.json"))
        assert len(traces) == 1

    def test_trace_named_layer(self, tmp_path, capsys):
        assert main(["-m=trace", "-n=toy", "--layer=b0_expand",
                     f"--workdir={tmp_path}"]) == 0
        assert "b0_expand" in capsys.readouterr().out

    def test_trace_unknown_layer(self, tmp_path, capsys):
        assert main(["-m=trace", "-n=toy", "--layer=nope",
                     f"--workdir={tmp_path}"]) == 2

    def test_report(self, tmp_path, capsys):
        assert main(["-m=report", "-n=toy", f"--workdir={tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "decisions:" in out
        assert "schedule" in out
        assert "GPU" in out and "PIM" in out

    def test_report_policy(self, tmp_path, capsys):
        assert main(["-m=report", "-n=toy", "--policy=Newton++",
                     f"--workdir={tmp_path}"]) == 0
        assert "Newton++" in capsys.readouterr().out
