"""Round-trip tests for graph (de)serialization."""

import numpy as np

from repro.graph.serialize import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.runtime.numerical import execute


class TestRoundTrip:
    def test_structure_preserved(self, pointwise_chain_graph):
        g2 = graph_from_dict(graph_to_dict(pointwise_chain_graph))
        g2.validate()
        assert [n.name for n in g2.nodes] == \
            [n.name for n in pointwise_chain_graph.nodes]
        assert g2.inputs == pointwise_chain_graph.inputs
        assert g2.outputs == pointwise_chain_graph.outputs

    def test_attrs_tuples_survive(self, small_conv_graph):
        g2 = graph_from_dict(graph_to_dict(small_conv_graph))
        conv = g2.node("c0")
        assert conv.attr("kernel_shape") == (3, 3)
        assert conv.attr("pads") == (1, 1, 1, 1)

    def test_numerics_preserved(self, small_conv_graph, rng):
        feed = {"x": rng.standard_normal((1, 14, 14, 8))}
        ref = execute(small_conv_graph, feed)
        g2 = graph_from_dict(graph_to_dict(small_conv_graph))
        out = execute(g2, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-5, atol=1e-5)

    def test_without_weights(self, small_conv_graph):
        g2 = graph_from_dict(graph_to_dict(small_conv_graph,
                                           include_weights=False))
        g2.validate()
        for name, value in g2.initializers.items():
            assert value.shape == g2.tensors[name].shape
            np.testing.assert_array_equal(value, 0)

    def test_file_round_trip(self, tmp_path, small_conv_graph, rng):
        path = tmp_path / "g.json"
        save_graph(small_conv_graph, path)
        g2 = load_graph(path)
        feed = {"x": rng.standard_normal((1, 14, 14, 8))}
        ref = execute(small_conv_graph, feed)
        out = execute(g2, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-5, atol=1e-5)

    def test_device_field_round_trips(self, small_conv_graph):
        g = small_conv_graph.clone()
        g.node("c0").device = "pim"
        g2 = graph_from_dict(graph_to_dict(g))
        assert g2.node("c0").device == "pim"
