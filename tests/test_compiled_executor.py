"""Property suite for the buffer-planned compiled executor.

The compiled path's contract is *byte identity* with the interpreted
:func:`repro.runtime.numerical.execute` oracle — not allclose — across
every registered model, MD-DP-split and pipelined transformed graphs,
batch sizes 1 and 8, and with elision on and off.  Every closure in
``runtime/compiled.py`` re-expresses the interpreter's exact float op
sequence, so any drift is a bug, not tolerance noise.
"""

import pickle

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.ops import is_pim_candidate
from repro.models import build_model, list_models
from repro.runtime.compiled import CompiledExecutable
from repro.runtime.numerical import execute
from repro.runtime.verify import random_feeds, verify_equivalence
from repro.transform.memopt import optimize_memory
from repro.transform.pipeline import pipeline_chain
from repro.transform.split import apply_mddp

SMALL_MODELS = ("toy", "mobilenet-v2", "shufflenet-v2")


def _mddp_split(graph, ratio=0.5):
    g = graph
    for node in graph.toposort():
        shapes = [graph.tensors[t].shape for t in node.inputs]
        if is_pim_candidate(node, shapes):
            g = apply_mddp(g, node.name, ratio)
    return optimize_memory(g)


def _chain_graph(h=14, cin=8, hidden=16, dw_kernel=3, seed=3):
    b = GraphBuilder("p", seed=seed)
    x = b.input("x", (1, h, h, cin))
    y = b.conv(x, cout=hidden, kernel=1, name="pw1")
    y = b.relu(y, name="act1")
    y = b.dwconv(y, kernel=dw_kernel, name="dw1")
    y = b.relu(y, name="act2")
    y = b.conv(y, cout=cin, kernel=1, name="pw2")
    b.output(y)
    return b.build()


def _assert_byte_identical(graph, feeds, ref=None, elide=True, runs=2):
    """Compiled output must match the interpreter bit for bit — on the
    first run *and* on repeats (which reuse the arena and must not see
    stale bytes, clobbered margins, or aliased leftovers)."""
    if ref is None:
        ref = execute(graph, feeds)
    exe = CompiledExecutable(graph, elide=elide)
    for run in range(runs):
        out = exe.run(feeds)
        assert set(out) == set(ref)
        for name in ref:
            a, b = ref[name], out[name]
            assert a.shape == b.shape, (name, run)
            assert a.dtype == b.dtype, (name, run)
            assert a.tobytes() == b.tobytes(), \
                f"{name} differs from the oracle on run {run} (elide={elide})"
    return ref


class TestRegistryOriginal:
    @pytest.mark.parametrize("model", list_models())
    def test_byte_identity_batch1(self, model):
        graph = build_model(model)
        feeds = random_feeds(graph, seed=0)
        _assert_byte_identical(graph, feeds)


class TestTransformed:
    @pytest.mark.parametrize("model", SMALL_MODELS)
    @pytest.mark.parametrize("batch", [1, 8])
    def test_mddp_split_byte_identity(self, model, batch):
        graph = _mddp_split(build_model(model))
        feeds = random_feeds(graph, seed=0, batch=batch)
        ref = execute(graph, feeds)
        for elide in (True, False):
            _assert_byte_identical(graph, feeds, ref=ref, elide=elide)

    @pytest.mark.parametrize("stages", [2, 3, 4])
    @pytest.mark.parametrize("batch", [1, 8])
    def test_pipelined_byte_identity(self, stages, batch):
        graph = optimize_memory(pipeline_chain(
            _chain_graph(), ("pw1", "act1", "dw1", "act2", "pw2"),
            num_stages=stages))
        feeds = random_feeds(graph, seed=0, batch=batch)
        ref = execute(graph, feeds)
        for elide in (True, False):
            _assert_byte_identical(graph, feeds, ref=ref, elide=elide)


class TestAliasing:
    def test_outputs_are_private_copies(self):
        graph = build_model("toy")
        feeds = random_feeds(graph, seed=0)
        exe = CompiledExecutable(graph)
        ref = execute(graph, feeds)
        first = exe.run(feeds)
        for arr in first.values():
            arr.fill(np.float32(123.0))  # must not poison the arena
        second = exe.run(feeds)
        for name in ref:
            assert ref[name].tobytes() == second[name].tobytes()

    def test_elided_view_never_sees_inplace_mutation(self):
        # s is a Slice view of conv output c; r = relu(c) is in-place
        # capable.  If the executor let Relu overwrite c's buffer, the
        # view s would observe relu'd values.  The planner must refuse
        # (c has two consumers), keeping s byte-identical to the oracle.
        b = GraphBuilder("alias", seed=1)
        x = b.input("x", (1, 8, 8, 4))
        c = b.conv(x, cout=4, kernel=3, name="c1")
        s = b.slice(c, axis=1, start=0, end=4, name="s1")
        r = b.relu(c, name="r1")
        s2 = b.conv(s, cout=4, kernel=1, name="c2")
        b.output(s2)
        b.output(r)
        graph = b.build()
        feeds = random_feeds(graph, seed=1)
        _assert_byte_identical(graph, feeds)

    def test_concat_input_also_graph_output(self):
        # An elided Concat input that is itself a graph output must not
        # be co-allocated into the concat buffer in a way that changes
        # its observable value.
        b = GraphBuilder("cc", seed=2)
        x = b.input("x", (1, 8, 8, 4))
        a = b.conv(x, cout=4, kernel=1, name="ca")
        c = b.conv(x, cout=4, kernel=1, name="cb")
        cat = b.concat([a, c], axis=1, name="cat")
        y = b.conv(cat, cout=4, kernel=1, name="cc")
        b.output(y)
        b.output(a)
        graph = optimize_memory(b.build())
        feeds = random_feeds(graph, seed=2)
        _assert_byte_identical(graph, feeds)


class TestStackWiring:
    def test_engine_infer_matches_oracle_and_stays_picklable(self):
        from repro.gpu.config import GpuConfig
        from repro.gpu.device import GpuDevice
        from repro.runtime.engine import ExecutionEngine

        graph = build_model("toy")
        feeds = random_feeds(graph, seed=0)
        engine = ExecutionEngine(GpuDevice(GpuConfig()))
        ref = engine.infer(graph, feeds, compiled=False)
        out = engine.infer(graph, feeds, compiled=True)
        again = engine.infer(graph, feeds, compiled=True)  # cached exe
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()
            assert ref[name].tobytes() == again[name].tobytes()
        assert len(engine._compiled_cache) == 1
        # The closure cache must not break engine pickling (job-engine
        # workers ship engines across processes).
        rebuilt = pickle.loads(pickle.dumps(engine))
        assert rebuilt._compiled_cache == {}

    def test_verify_equivalence_uses_compiled_path(self):
        graph = build_model("toy")
        split = _mddp_split(graph)
        assert verify_equivalence(graph, split) < 1e-3
        assert verify_equivalence(graph, split, use_compiled=False) < 1e-3

    def test_plan_records_and_serves_buffer_stats(self, tmp_path):
        from repro.pimflow import PimFlow, PimFlowConfig
        from repro.plan.artifact import ExecutionPlan
        from repro.runtime.executor import PlanExecutor

        flow = PimFlow(PimFlowConfig(mechanism="pimflow", jobs=1))
        plan = flow.build_plan(build_model("toy"), model_name="toy")
        assert plan.buffer_plan["arena_bytes"] > 0

        path = tmp_path / "plan.json"
        plan.save(path, include_weights=True)
        loaded = ExecutionPlan.load(path)
        assert loaded.buffer_plan == plan.buffer_plan

        executor = PlanExecutor(loaded)
        assert executor.buffer_stats() == plan.buffer_plan
        feeds = random_feeds(loaded.graph, seed=0)
        ref = executor.infer(feeds, compiled=False)
        out = executor.infer(feeds, compiled=True)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()

    def test_plan_without_buffer_stats_recomputes(self):
        from repro.plan.artifact import ExecutionPlan

        data = {"version": 1, "mechanism": "pimflow",
                "config_fingerprint": "x", "predicted_time_us": 0.0,
                "decisions": [], "runtime_spec": {}}
        from repro.graph.serialize import graph_to_dict
        data["graph"] = graph_to_dict(build_model("toy"))
        plan = ExecutionPlan.from_dict(data)
        assert plan.buffer_plan == {}

    def test_batch_polymorphic_program_cache(self):
        graph = build_model("toy")
        exe = CompiledExecutable(graph)
        for batch in (1, 8, 1):
            feeds = random_feeds(graph, seed=0, batch=batch)
            ref = execute(graph, feeds)
            out = exe.run(feeds)
            for name in ref:
                assert ref[name].tobytes() == out[name].tobytes()
        assert len(exe._pools) == 2  # one program per input-shape set

    def test_graph_version_invalidates_programs(self):
        graph = build_model("toy")
        feeds = random_feeds(graph, seed=0)
        exe = CompiledExecutable(graph)
        exe.run(feeds)
        graph.touch()
        out = exe.run(feeds)  # must rebind, not serve the stale program
        ref = execute(graph, feeds)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()

    def test_stats_surface(self):
        exe = CompiledExecutable(build_model("toy"))
        stats = exe.stats()
        assert stats["arena_bytes"] > 0
        assert stats["padded_conv_reads"] > 0
