"""Tests for the energy models."""

import pytest

from repro.energy.accumulator import EnergyBreakdown
from repro.energy.constants import GpuEnergyModel, PimEnergyModel


class TestGpuEnergy:
    def test_dynamic_scales_with_work(self):
        m = GpuEnergyModel()
        assert m.dynamic_mj(2e9, 1e6) > m.dynamic_mj(1e9, 1e6)
        assert m.dynamic_mj(1e9, 2e6) > m.dynamic_mj(1e9, 1e6)

    def test_static_scales_with_time(self):
        m = GpuEnergyModel()
        assert m.static_mj(200.0) == pytest.approx(2 * m.static_mj(100.0))

    def test_kernel_energy_is_sum(self):
        m = GpuEnergyModel()
        assert m.kernel_energy_mj(1e9, 1e6, 50.0) == pytest.approx(
            m.dynamic_mj(1e9, 1e6) + m.static_mj(50.0))


class TestPimEnergy:
    def test_pim_mac_cheaper_than_gpu_flop(self):
        # The premise of Fig. 12: fixed-function MAC logic needs less
        # energy per operation than dense GPU cores.
        gpu = GpuEnergyModel()
        pim = PimEnergyModel()
        assert pim.pj_per_mac < gpu.pj_per_flop

    def test_components_additive(self):
        m = PimEnergyModel()
        total = m.dynamic_mj(10, 1e6, 1e3, 1e3)
        parts = (m.dynamic_mj(10, 0, 0, 0) + m.dynamic_mj(0, 1e6, 0, 0)
                 + m.dynamic_mj(0, 0, 1e3, 0) + m.dynamic_mj(0, 0, 0, 1e3))
        assert total == pytest.approx(parts)

    def test_static_scales_with_channels(self):
        m = PimEnergyModel()
        assert m.static_mj(100.0, 32) == pytest.approx(2 * m.static_mj(100.0, 16))


class TestBreakdown:
    def test_total_sums_components(self):
        b = EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert b.total_mj == 15.0

    def test_add_accumulates(self):
        a = EnergyBreakdown(1.0, 1.0, 1.0, 1.0, 1.0)
        a.add(EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0))
        assert a.total_mj == 20.0
        assert a.gpu_static_mj == 3.0

    def test_as_dict(self):
        d = EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0).as_dict()
        assert d["total_mj"] == 15.0
        assert set(d) == {"gpu_dynamic_mj", "gpu_static_mj", "pim_dynamic_mj",
                          "pim_static_mj", "movement_mj", "total_mj"}
