"""Overload behavior: bounded queue, typed shedding, bounded tail.

The acceptance scenario: offered load beyond capacity against a
bounded queue of depth Q must produce typed ``Overloaded`` rejections
(never silent drops) while the latency of *accepted* requests stays
bounded by what Q requests in front can cost.
"""

import time

import pytest

from repro.serve import (
    InferenceServer,
    ModelRepository,
    Overloaded,
    ServerConfig,
)
from repro.serve.loadgen import feeds_for, run_open_loop


def _slow_server(plan, queue_depth, work_s=0.01, workers=1):
    """A server whose per-batch host work is padded to ``work_s``."""
    repo = ModelRepository()
    repo.register_plan("toy", plan)
    loaded = repo.get("toy")
    real_infer = loaded.executor.infer

    def slow_infer(feeds, **kwargs):
        time.sleep(work_s)
        return real_infer(feeds, **kwargs)

    loaded.executor.infer = slow_infer
    return InferenceServer(repo, ServerConfig(
        workers=workers, queue_depth=queue_depth,
        max_batch_size=1, max_wait_ms=0))


class TestOverload:
    def test_sustained_overload_sheds_typed_and_bounds_tail(self, toy_plan):
        work_s = 0.02
        queue_depth = 4
        server = _slow_server(toy_plan, queue_depth, work_s=work_s)
        with server:
            # Offered ~5x capacity (capacity = 1/work_s = 50 rps).
            result = run_open_loop(server, "toy", rate_rps=250,
                                   duration_s=1.0)
        snap = result.server_stats

        # Conservation: every offered request has exactly one outcome.
        assert result.offered == (result.completed + result.rejected
                                  + result.expired + result.failed)
        assert result.failed == 0
        # Overload was real and shedding was typed.
        assert result.rejected > 0
        assert snap["rejected_overloaded"] == result.rejected
        assert result.completed > 0
        # The queue never grew past its bound.
        assert snap["peak_queue_depth"] <= queue_depth

        # Accepted-latency bound: a request admitted behind a full
        # queue waits for at most Q in-flight units of work (plus its
        # own).  Generous 5x slack for scheduler noise on CI.
        bound_ms = (queue_depth + 2) * work_s * 1e3 * 5
        assert result.p(99) < bound_ms, (
            f"accepted p99 {result.p(99):.1f} ms exceeds bound "
            f"{bound_ms:.1f} ms — queueing is not bounded")

    def test_rejection_is_immediate_not_queued(self, toy_plan):
        server = _slow_server(toy_plan, queue_depth=1, work_s=0.2)
        with server:
            # Fill the worker + the single queue slot.
            first = server.submit("toy", feeds_for(toy_plan.graph, 0))
            time.sleep(0.05)  # let the worker take `first`
            second = server.submit("toy", feeds_for(toy_plan.graph, 1))
            t0 = time.perf_counter()
            with pytest.raises(Overloaded) as exc:
                server.submit("toy", feeds_for(toy_plan.graph, 2))
            reject_ms = (time.perf_counter() - t0) * 1e3
            assert reject_ms < 50, "shedding must not block"
            assert exc.value.queue_depth == 1
            first.result(timeout=30.0)
            second.result(timeout=30.0)
        assert server.stats()["rejected_overloaded"] == 1

    def test_no_silent_drops_under_burst(self, toy_plan):
        """Every burst request resolves: a response or a typed error."""
        server = _slow_server(toy_plan, queue_depth=2, work_s=0.01)
        outcomes = []
        with server:
            handles = []
            for i in range(32):
                try:
                    handles.append(server.submit(
                        "toy", feeds_for(toy_plan.graph, i)))
                except Overloaded:
                    outcomes.append("rejected")
            for h in handles:
                try:
                    h.result(timeout=30.0)
                    outcomes.append("completed")
                except Exception:
                    outcomes.append("failed")
        assert len(outcomes) == 32
        assert "failed" not in outcomes
        assert outcomes.count("completed") >= 1
