"""Tests for the engine's bounded, thread-safe executable cache."""

import pickle
import threading

import numpy as np

from repro.pimflow import PimFlow, PimFlowConfig
from repro.runtime.verify import random_feeds


def _engine():
    return PimFlow(PimFlowConfig(mechanism="gpu")).engine


class TestBoundedLru:
    def test_repeat_infer_reuses_one_entry(self, small_conv_graph):
        engine = _engine()
        feeds = random_feeds(small_conv_graph, seed=0)
        a = engine.infer(small_conv_graph, feeds)
        b = engine.infer(small_conv_graph, feeds)
        assert engine.executable_cache_stats() == {"entries": 1, "cap": 8}
        for name in a:
            assert np.array_equal(a[name], b[name])

    def test_cache_capped_with_lru_eviction(self, small_conv_graph,
                                            pointwise_chain_graph, fc_graph):
        engine = _engine()
        engine.executable_cache_cap = 2
        graphs = [small_conv_graph, pointwise_chain_graph, fc_graph]
        for g in graphs:
            engine.executable(g)
        assert engine.executable_cache_stats()["entries"] == 2
        # The oldest (small_conv_graph) was evicted; the newer two hit.
        exe_chain = engine.executable(pointwise_chain_graph)
        exe_fc = engine.executable(fc_graph)
        assert engine.executable(pointwise_chain_graph) is exe_chain
        assert engine.executable(fc_graph) is exe_fc
        assert engine.executable_cache_stats()["entries"] == 2

    def test_elide_variants_cached_separately(self, small_conv_graph):
        engine = _engine()
        a = engine.executable(small_conv_graph, elide=True)
        b = engine.executable(small_conv_graph, elide=False)
        assert a is not b
        assert engine.executable_cache_stats()["entries"] == 2

    def test_graph_version_bump_invalidates(self, small_conv_graph):
        engine = _engine()
        stale = engine.executable(small_conv_graph)
        small_conv_graph.touch()
        fresh = engine.executable(small_conv_graph)
        assert fresh is not stale
        # The stale version's entry was purged, not left to rot.
        assert engine.executable_cache_stats()["entries"] == 1


class TestThreadSafety:
    def test_concurrent_infer_same_graph(self, small_conv_graph):
        """Many threads infer through one engine: results must match the
        single-threaded answer bit-for-bit and the cache stays at one
        entry."""
        engine = _engine()
        feeds = [random_feeds(small_conv_graph, seed=s) for s in range(8)]
        expected = [engine.infer(small_conv_graph, f) for f in feeds]
        results = [None] * len(feeds)
        errors = []

        def worker(i):
            try:
                for _ in range(3):
                    results[i] = engine.infer(small_conv_graph, feeds[i])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(feeds))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for got, want in zip(results, expected):
            for name in want:
                assert np.array_equal(got[name], want[name])
        assert engine.executable_cache_stats()["entries"] == 1

    def test_concurrent_miss_storm_across_graphs(self, small_conv_graph,
                                                 pointwise_chain_graph,
                                                 fc_graph):
        engine = _engine()
        engine.executable_cache_cap = 2
        graphs = [small_conv_graph, pointwise_chain_graph, fc_graph]
        errors = []

        def worker(seed):
            try:
                for i in range(9):
                    g = graphs[(seed + i) % len(graphs)]
                    engine.infer(g, random_feeds(g, seed=0))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert engine.executable_cache_stats()["entries"] <= 2


class TestPickling:
    def test_pickle_drops_cache_and_rebuilds_lock(self, small_conv_graph):
        engine = _engine()
        engine.infer(small_conv_graph, random_feeds(small_conv_graph, seed=0))
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.executable_cache_stats()["entries"] == 0
        # The rebuilt engine still infers (lock and cache recreated).
        out = clone.infer(small_conv_graph,
                          random_feeds(small_conv_graph, seed=0))
        assert out
