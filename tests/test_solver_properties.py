"""Property-based tests: the DP solve is optimal over random tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.solver import solve
from repro.search.table import MeasurementTable, RegionMeasurement


def _brute_force(order, table):
    """Enumerate every tiling of the order into measured regions."""
    n = len(order)
    best = [float("inf")] * (n + 1)
    best[n] = 0.0
    for i in range(n - 1, -1, -1):
        for span in table.spans_at(order[i]):
            if i + span > n:
                continue
            for meas in table.options(order[i], span):
                if meas.chain and tuple(order[i:i + span]) != meas.chain:
                    continue
                best[i] = min(best[i], meas.time_us + best[i + span])
    return best[0]


@st.composite
def _random_problem(draw):
    n = draw(st.integers(1, 8))
    order = [f"n{i}" for i in range(n)]
    table = MeasurementTable()
    for name in order:
        table.add(RegionMeasurement(
            name, 1, "gpu",
            draw(st.floats(0.5, 20.0))))
        if draw(st.booleans()):
            table.add(RegionMeasurement(
                name, 1, "split",
                draw(st.floats(0.5, 20.0)),
                ratio_gpu=draw(st.sampled_from([0.0, 0.3, 0.5, 0.7]))))
    # Random pipeline options over contiguous spans.
    for _ in range(draw(st.integers(0, 4))):
        start = draw(st.integers(0, n - 1))
        span = draw(st.integers(2, 3))
        if start + span > n:
            continue
        chain = tuple(order[start:start + span])
        table.add(RegionMeasurement(
            chain[0], span, "pipeline",
            draw(st.floats(0.5, 40.0)), chain=chain))
    return order, table


class TestSolverOptimality:
    @settings(max_examples=80, deadline=None)
    @given(problem=_random_problem())
    def test_matches_brute_force(self, problem):
        order, table = problem
        dp_time, decisions = solve(order, table)
        assert dp_time == pytest.approx(_brute_force(order, table))
        # Decisions tile the order exactly.
        covered = [node for d in decisions for node in d.nodes]
        assert covered == order
        # Reported cost equals the sum of chosen regions.
        assert dp_time == pytest.approx(sum(d.time_us for d in decisions))

    @settings(max_examples=40, deadline=None)
    @given(problem=_random_problem())
    def test_never_worse_than_all_gpu(self, problem):
        order, table = problem
        dp_time, _ = solve(order, table)
        all_gpu = sum(
            next(m.time_us for m in table.options(name, 1)
                 if m.mode == "gpu")
            for name in order)
        assert dp_time <= all_gpu + 1e-9
