"""Unit tests for the Graph container."""

import numpy as np
import pytest

from repro.graph.graph import Graph, GraphError
from repro.graph.node import Node
from repro.graph.tensor import TensorInfo


def _diamond_graph():
    """x -> a -> (b, c) -> d, exercising branching."""
    g = Graph("diamond")
    for name, shape in [("x", (1, 4)), ("a", (1, 4)), ("b", (1, 4)),
                        ("c", (1, 4)), ("d", (1, 4))]:
        g.add_tensor(TensorInfo(name, shape))
    g.inputs = ["x"]
    g.outputs = ["d"]
    g.add_node(Node("na", "Relu", ["x"], ["a"]))
    g.add_node(Node("nd", "Add", ["b", "c"], ["d"]))  # out of order on purpose
    g.add_node(Node("nb", "Relu", ["a"], ["b"]))
    g.add_node(Node("nc", "Sigmoid", ["a"], ["c"]))
    return g


class TestConstruction:
    def test_duplicate_node_name_rejected(self):
        g = Graph()
        g.add_tensor(TensorInfo("x", (1,)))
        g.add_tensor(TensorInfo("y", (1,)))
        g.add_node(Node("n", "Relu", ["x"], ["y"]))
        g.add_tensor(TensorInfo("z", (1,)))
        with pytest.raises(GraphError):
            g.add_node(Node("n", "Relu", ["y"], ["z"]))

    def test_unknown_tensor_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node(Node("n", "Relu", ["x"], ["y"]))

    def test_conflicting_tensor_info_rejected(self):
        g = Graph()
        g.add_tensor(TensorInfo("x", (1, 2)))
        g.add_tensor(TensorInfo("x", (1, 2)))  # identical re-register is fine
        with pytest.raises(GraphError):
            g.add_tensor(TensorInfo("x", (2, 1)))

    def test_unique_name(self):
        g = Graph()
        g.add_tensor(TensorInfo("x", (1,)))
        n1 = g.unique_name("t")
        g.add_tensor(TensorInfo(n1, (1,)))
        n2 = g.unique_name("t")
        assert n1 != n2


class TestTraversal:
    def test_toposort_orders_dataflow(self):
        g = _diamond_graph()
        order = [n.name for n in g.toposort()]
        assert order.index("na") < order.index("nb")
        assert order.index("nb") < order.index("nd")
        assert order.index("nc") < order.index("nd")

    def test_toposort_detects_missing_input(self):
        g = Graph()
        g.add_tensor(TensorInfo("ghost", (1,)))
        g.add_tensor(TensorInfo("y", (1,)))
        g.add_node(Node("n", "Relu", ["ghost"], ["y"]))
        with pytest.raises(GraphError):
            g.toposort()

    def test_producer_and_consumers(self):
        g = _diamond_graph()
        assert g.producer("a").name == "na"
        assert g.producer("x") is None
        assert {n.name for n in g.consumers("a")} == {"nb", "nc"}

    def test_node_lookup(self):
        g = _diamond_graph()
        assert g.node("nb").op_type == "Relu"
        with pytest.raises(KeyError):
            g.node("missing")

    def test_remove_node(self):
        g = _diamond_graph()
        g.remove_node("nd")
        assert all(n.name != "nd" for n in g.nodes)
        with pytest.raises(KeyError):
            g.remove_node("nd")


class TestValidation:
    def test_valid_graph_passes(self):
        _diamond_graph().validate()

    def test_double_producer_rejected(self):
        bad = Graph("bad")
        bad.add_tensor(TensorInfo("x", (1,)))
        bad.add_tensor(TensorInfo("y", (1,)))
        bad.inputs = ["x"]
        bad.outputs = ["y"]
        bad.add_node(Node("n1", "Relu", ["x"], ["y"]))
        bad.add_node(Node("n2", "Sigmoid", ["x"], ["y"]))
        with pytest.raises(GraphError):
            bad.validate()

    def test_shape_mismatch_rejected(self):
        g = Graph("bad_shape")
        g.add_tensor(TensorInfo("x", (1, 4)))
        g.add_tensor(TensorInfo("y", (1, 5)))  # wrong: Relu preserves shape
        g.inputs = ["x"]
        g.outputs = ["y"]
        g.add_node(Node("n", "Relu", ["x"], ["y"]))
        with pytest.raises(GraphError):
            g.validate()

    def test_unproduced_output_rejected(self):
        g = Graph("dangling")
        g.add_tensor(TensorInfo("x", (1,)))
        g.add_tensor(TensorInfo("y", (1,)))
        g.inputs = ["x"]
        g.outputs = ["y"]
        with pytest.raises(GraphError):
            g.validate()

    def test_overwriting_initializer_rejected(self):
        g = Graph("bad_init")
        g.add_tensor(TensorInfo("x", (1, 4)))
        g.add_initializer("w", np.zeros((1, 4), dtype=np.float32))
        g.inputs = ["x"]
        g.outputs = ["w"]
        g.add_node(Node("n", "Relu", ["x"], ["w"]))
        with pytest.raises(GraphError):
            g.validate()


class TestClone:
    def test_clone_is_structurally_independent(self):
        g = _diamond_graph()
        c = g.clone()
        c.node("na").device = "pim"
        c.remove_node("nd")
        assert g.node("na").device == "auto"
        assert any(n.name == "nd" for n in g.nodes)

    def test_clone_preserves_everything(self, small_conv_graph):
        c = small_conv_graph.clone()
        c.validate()
        assert [n.name for n in c.nodes] == [n.name for n in small_conv_graph.nodes]
        assert c.inputs == small_conv_graph.inputs
        assert c.outputs == small_conv_graph.outputs
        assert set(c.initializers) == set(small_conv_graph.initializers)


class TestIntrospection:
    def test_op_counts(self, pointwise_chain_graph):
        counts = pointwise_chain_graph.op_counts()
        assert counts["Conv"] == 3
        assert counts["Relu"] == 2

    def test_len(self, pointwise_chain_graph):
        assert len(pointwise_chain_graph) == 5

    def test_is_weight(self, small_conv_graph):
        conv = small_conv_graph.node("c0")
        assert small_conv_graph.is_weight(conv.inputs[1])
        assert not small_conv_graph.is_weight(conv.inputs[0])
