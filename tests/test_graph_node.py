"""Unit tests for graph nodes."""

import pytest

from repro.graph.node import Node


class TestNode:
    def test_attr_default(self):
        n = Node("n", "Relu", ["x"], ["y"])
        assert n.attr("missing") is None
        assert n.attr("missing", 7) == 7

    def test_attr_present(self):
        n = Node("n", "Conv", ["x", "w"], ["y"], {"group": 4})
        assert n.attr("group") == 4

    def test_clone_is_independent(self):
        n = Node("n", "Conv", ["x", "w"], ["y"], {"pads": (1, 1, 1, 1)})
        c = n.clone()
        c.attrs["pads"] = (0, 0, 0, 0)
        c.inputs.append("b")
        assert n.attrs["pads"] == (1, 1, 1, 1)
        assert n.inputs == ["x", "w"]

    def test_clone_with_overrides(self):
        n = Node("n", "Conv", ["x", "w"], ["y"])
        c = n.clone(name="m", device="pim")
        assert c.name == "m" and c.device == "pim"
        assert n.device == "auto"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Node("", "Relu", ["x"], ["y"])

    def test_rejects_empty_outputs(self):
        with pytest.raises(ValueError):
            Node("n", "Relu", ["x"], [])

    def test_rejects_bad_device(self):
        with pytest.raises(ValueError):
            Node("n", "Relu", ["x"], ["y"], device="tpu")

    def test_default_device_is_auto(self):
        assert Node("n", "Relu", ["x"], ["y"]).device == "auto"
