"""Concurrency tests for the content-addressed profile cache.

The profiler's parallel path uses a single-writer discipline: worker
processes never touch the cache; the parent merges results back and
stores them in canonical order (see ``Profiler._profile_parallel``).
Readers, however, may be concurrent — the serving layer compiles
models lazily from multiple worker threads, each consulting the same
on-disk cache.  These tests pin down that contract: concurrent lookups
against a live writer never observe torn entries, and repeated
single-writer merges are idempotent.
"""

import threading

from repro.models import build_model
from repro.pimflow import PimFlow, PimFlowConfig
from repro.plan.cache import ProfileCache
from repro.search.table import RegionMeasurement


def _entry(name, time_us):
    return [RegionMeasurement(name, 1, "gpu", time_us).to_dict()]


class TestConcurrentReaders:
    def test_readers_never_see_torn_entries(self, tmp_path):
        """Lookups racing a writer return either None or a complete,
        well-formed entry — never a partial write (atomic replace)."""
        cache = ProfileCache(tmp_path)
        fps = [f"fp{i}" for i in range(24)]
        stop = threading.Event()
        errors = []

        def writer():
            # Rewrite every entry repeatedly; payload encodes its key
            # so readers can check integrity.
            for round_no in range(30):
                for i, fp in enumerate(fps):
                    cache.store("cfg", fp, _entry(f"n{i}", float(i)))
            stop.set()

        def reader():
            try:
                while not stop.is_set():
                    for i, fp in enumerate(fps):
                        got = cache.lookup("cfg", fp)
                        if got is None:
                            continue
                        assert got[0]["start"] == f"n{i}", (
                            f"torn read for {fp}: {got}")
                        assert got[0]["time_us"] == float(i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        w = threading.Thread(target=writer)
        for t in readers:
            t.start()
        w.start()
        w.join()
        for t in readers:
            t.join()
        assert not errors
        assert cache.num_entries == len(fps)

    def test_concurrent_lookup_stats_are_conserved(self, tmp_path):
        """Hit/miss counters under pure concurrent reads add up."""
        cache = ProfileCache(tmp_path)
        cache.store("cfg", "hot", _entry("n", 1.0))
        per_thread = 50
        threads = 6

        def reader():
            for _ in range(per_thread):
                assert cache.lookup("cfg", "hot") is not None
                assert cache.lookup("cfg", "cold") is None

        ts = [threading.Thread(target=reader) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        stats = cache.stats()
        assert stats["hits"] == threads * per_thread
        assert stats["misses"] == threads * per_thread
        assert stats["entries"] == 1


class TestSingleWriterMerge:
    def test_repeated_merge_is_idempotent(self, tmp_path):
        """Merging the same results twice (e.g. two profiling rounds
        over one model) leaves one entry per fingerprint."""
        cache = ProfileCache(tmp_path)
        for _ in range(2):
            for i in range(8):
                cache.store("cfg", f"fp{i}", _entry(f"n{i}", float(i)))
        assert cache.num_entries == 8
        for i in range(8):
            assert cache.lookup("cfg", f"fp{i}")[0]["time_us"] == float(i)

    def test_last_merge_wins_per_fingerprint(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cache.store("cfg", "fp", _entry("n", 1.0))
        cache.store("cfg", "fp", _entry("n", 2.0))
        assert cache.num_entries == 1
        assert cache.lookup("cfg", "fp")[0]["time_us"] == 2.0

    def test_parallel_compile_threads_share_one_disk_cache(self, tmp_path):
        """Serving's compile-on-first-request from several threads: all
        threads profile through one cache directory and the second wave
        is served entirely from cache (zero extra simulator runs)."""
        model = build_model("toy")

        def compile_once(results, idx):
            flow = PimFlow(PimFlowConfig(mechanism="pimflow",
                                         cache_dir=tmp_path))
            flow.build_plan(model.clone(), model_name="toy")
            results[idx] = flow.cache.stats()

        # Wave 1: populate (single writer — one thread compiles first).
        first = [None]
        compile_once(first, 0)
        entries = first[0]["entries"]
        assert entries > 0

        # Wave 2: concurrent compiles, all reads.
        results = [None] * 3
        threads = [threading.Thread(target=compile_once, args=(results, i))
                   for i in range(len(results))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for stats in results:
            assert stats["entries"] == entries  # nothing re-profiled
            assert stats["misses"] == 0
            assert stats["hits"] > 0
