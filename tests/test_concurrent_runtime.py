"""Concurrency stress suite for the pooled/parallel host runtime.

The concurrent runtime's contract is the same as the serial compiled
path's: *byte identity* with the interpreted oracle — under M threads
hammering one shared executable (each on a pooled private state), and
under the operator-parallel scheduler (hazard-edged dispatch of ready
steps, batch sharding at batch >= 4).  Any interleaving that changes a
single output byte is a missing dependency edge or a shared-state leak,
never acceptable noise.

Also covers the :class:`~repro.runtime.hostpool.StatePool` primitive
directly (lazy binding, reuse, exhaustion/timeout, factory rollback)
and the server-side concurrency gauges.
"""

import threading

import numpy as np
import pytest

from repro.models import build_model
from repro.runtime.compiled import CompiledExecutable
from repro.runtime.hostpool import (
    StatePool,
    StatePoolTimeout,
    resolve_host_workers,
)
from repro.runtime.numerical import execute
from repro.runtime.verify import random_feeds

STRESS_MODELS = ("toy", "mobilenet-v2", "shufflenet-v2")


def _stress(exe, graph, *, threads, runs_each, batch=1, seeds=(0, 1),
            workers=None):
    """M threads x K runs against one shared executable vs the oracle."""
    cases = {}
    for seed in seeds:
        feeds = random_feeds(graph, seed=seed, batch=batch)
        cases[seed] = (feeds, execute(graph, feeds))
    failures = []
    barrier = threading.Barrier(threads)

    def worker(tid):
        try:
            barrier.wait(timeout=60)
            for k in range(runs_each):
                seed = (tid + k) % len(seeds)
                feeds, ref = cases[seed]
                out = exe.run(feeds, workers=workers)
                for name in ref:
                    if ref[name].tobytes() != out[name].tobytes():
                        failures.append(
                            f"thread {tid} run {k} seed {seed}: "
                            f"{name} diverged from the oracle")
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(f"thread {tid}: {type(exc).__name__}: {exc}")

    ts = [threading.Thread(target=worker, args=(i,), daemon=True)
          for i in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join(timeout=300)
        assert not t.is_alive(), "stress worker wedged"
    assert not failures, "\n".join(failures)


class TestPooledByteIdentity:
    """Threads share one executable; each run gets a pooled state."""

    @pytest.mark.parametrize("model", STRESS_MODELS)
    def test_threaded_infer_matches_serial_oracle(self, model):
        graph = build_model(model)
        exe = CompiledExecutable(graph, max_states=4)
        _stress(exe, graph, threads=4, runs_each=3)
        stats = exe.pool_stats()
        assert stats["acquires"] == 4 * 3
        assert stats["in_use"] == 0, "a run leaked its state"
        assert 1 <= stats["states_bound"] <= 4

    def test_pool_binds_lazily_for_serial_callers(self):
        graph = build_model("toy")
        exe = CompiledExecutable(graph, max_states=4)
        feeds = random_feeds(graph, seed=0)
        for _ in range(5):
            exe.run(feeds)
        assert exe.pool_stats()["states_bound"] == 1

    def test_mixed_batch_shapes_under_threads(self):
        # Distinct input shapes bind distinct programs (own pools);
        # concurrent callers across shapes must not cross-contaminate.
        graph = build_model("toy")
        exe = CompiledExecutable(graph, max_states=2)
        refs = {}
        for batch in (1, 8):
            feeds = random_feeds(graph, seed=0, batch=batch)
            refs[batch] = (feeds, execute(graph, feeds))
        failures = []

        def worker(batch):
            feeds, ref = refs[batch]
            for _ in range(4):
                out = exe.run(feeds)
                for name in ref:
                    if ref[name].tobytes() != out[name].tobytes():
                        failures.append(f"batch {batch}: {name} diverged")

        ts = [threading.Thread(target=worker, args=(b,), daemon=True)
              for b in (1, 8, 1, 8)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(timeout=300)
        assert not failures, "\n".join(failures)
        assert exe.pool_stats()["programs"] == 2


class TestOperatorParallelByteIdentity:
    """The hazard-edged scheduler must equal serial bit for bit."""

    @pytest.mark.parametrize("model", ("mobilenet-v2", "shufflenet-v2"))
    @pytest.mark.parametrize("batch", (1, 8))
    def test_parallel_schedule_matches_oracle(self, model, batch):
        graph = build_model(model)
        feeds = random_feeds(graph, seed=0, batch=batch)
        ref = execute(graph, feeds)
        exe = CompiledExecutable(graph, workers=4)
        for run in range(3):  # repeats reuse the arena
            out = exe.run(feeds)
            for name in ref:
                assert ref[name].tobytes() == out[name].tobytes(), \
                    f"{name} diverged on parallel run {run}"

    def test_threads_plus_operator_parallel(self):
        # Both concurrency axes at once: pooled states across threads,
        # parallel dispatch within each run, shufflenet's branchy graph.
        graph = build_model("shufflenet-v2")
        exe = CompiledExecutable(graph, workers=4, max_states=2)
        _stress(exe, graph, threads=3, runs_each=2, batch=8)

    def test_run_workers_can_only_lower_width(self):
        graph = build_model("toy")
        feeds = random_feeds(graph, seed=0, batch=8)
        ref = execute(graph, feeds)
        serial_exe = CompiledExecutable(graph, workers=1)
        # Asking a serial executable for more workers must not widen it
        # (its states were bound without sharding/step graphs).
        out = serial_exe.run(feeds, workers=8)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()
        wide_exe = CompiledExecutable(graph, workers=4)
        out = wide_exe.run(feeds, workers=1)  # lowering is honoured
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()


class TestStatePool:
    def test_cap_validation(self):
        with pytest.raises(ValueError):
            StatePool(list, cap=0)

    def test_lazy_bind_and_reuse(self):
        built = []
        pool = StatePool(lambda: built.append(1) or object(), cap=3)
        s = pool.acquire()
        pool.release(s)
        t = pool.acquire()
        assert t is s, "free state must be reused, not rebuilt"
        pool.release(t)
        assert len(built) == 1
        assert pool.stats() == {
            "cap": 3, "states_bound": 1, "in_use": 0, "peak_in_use": 1,
            "acquires": 2, "waits": 0}

    def test_exhaustion_times_out(self):
        pool = StatePool(object, cap=1)
        held = pool.acquire()
        with pytest.raises(StatePoolTimeout):
            pool.acquire(timeout_s=0.05)
        assert pool.stats()["waits"] >= 1
        pool.release(held)
        again = pool.acquire(timeout_s=0.05)  # release unblocks
        assert again is held

    def test_release_wakes_blocked_acquirer(self):
        pool = StatePool(object, cap=1)
        held = pool.acquire()
        got = []

        def blocked():
            got.append(pool.acquire(timeout_s=10.0))

        t = threading.Thread(target=blocked, daemon=True)
        t.start()
        # Give the waiter time to block, then hand the state over.
        deadline = threading.Event()
        deadline.wait(0.05)
        pool.release(held)
        t.join(timeout=10)
        assert not t.is_alive()
        assert got == [held]

    def test_factory_failure_rolls_back_slot(self):
        calls = []

        def factory():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("bind failed")
            return object()

        pool = StatePool(factory, cap=1)
        with pytest.raises(RuntimeError, match="bind failed"):
            pool.acquire()
        # The failed bind must not burn the slot forever.
        state = pool.acquire(timeout_s=1.0)
        assert state is not None
        assert pool.stats()["states_bound"] == 1

    def test_executable_surfaces_pool_timeout(self):
        graph = build_model("toy")
        exe = CompiledExecutable(graph, max_states=1)
        feeds = random_feeds(graph, seed=0)
        exe.run(feeds)  # bind the single state
        _, pool = exe._pool_for(
            {n: np.asarray(feeds[n], dtype=np.float32)
             for n in graph.inputs})
        held = pool.acquire()  # starve the pool
        try:
            with pytest.raises(StatePoolTimeout):
                exe.run(feeds, state_timeout_s=0.05)
        finally:
            pool.release(held)
        out = exe.run(feeds)  # recovers once the state returns
        ref = execute(graph, feeds)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()


class TestWorkerResolution:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOST_WORKERS", "7")
        assert resolve_host_workers(2) == 2
        assert resolve_host_workers() == 7

    def test_env_default_and_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOST_WORKERS", raising=False)
        assert resolve_host_workers() == 1
        monkeypatch.setenv("REPRO_HOST_WORKERS", "0")
        import os
        assert resolve_host_workers() == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_HOST_WORKERS", "junk")
        assert resolve_host_workers() == 1

    def test_engine_cache_keys_on_width(self, monkeypatch):
        from repro.gpu.config import GpuConfig
        from repro.gpu.device import GpuDevice
        from repro.runtime.engine import ExecutionEngine

        monkeypatch.delenv("REPRO_HOST_WORKERS", raising=False)
        graph = build_model("toy")
        feeds = random_feeds(graph, seed=0)
        engine = ExecutionEngine(GpuDevice(GpuConfig()))
        ref = engine.infer(graph, feeds, compiled=False)
        a = engine.infer(graph, feeds, compiled=True)
        b = engine.infer(graph, feeds, compiled=True, workers=4)
        assert len(engine._compiled_cache) == 2
        for name in ref:
            assert ref[name].tobytes() == a[name].tobytes()
            assert ref[name].tobytes() == b[name].tobytes()
        host = engine.host_stats()
        assert host["executables"] == 2
        assert host["in_use"] == 0


class TestServerConcurrencyGauges:
    def test_server_reports_host_concurrency(self):
        from repro.pimflow import Compiler, PimFlowConfig
        from repro.serve import InferenceServer, ModelRepository, ServerConfig
        from repro.serve.loadgen import run_closed_loop

        plan = Compiler(PimFlowConfig(mechanism="gpu")).build_plan(
            build_model("toy"), model_name="toy")
        repo = ModelRepository()
        repo.register_plan("toy", plan)
        server = InferenceServer(repo, ServerConfig(
            workers=4, max_batch_size=1, max_wait_ms=0.0,
            queue_depth=64, host_states=4))
        with server:
            result = run_closed_loop(server, "toy", clients=4,
                                     requests_per_client=4)
            snap = server.stats()
        assert result.completed == 16
        assert result.failed == 0
        metrics = snap["metrics"] if "metrics" in snap else snap
        assert metrics["host_inflight"] == 0
        assert metrics["host_inflight_peak"] >= 1
        host = snap["host"]
        assert host["models"] == 1
        assert host["in_use"] == 0
        assert 1 <= host["peak_in_use"] <= 4
        assert host["acquires"] >= 16

    def test_host_states_validation(self):
        from repro.serve.server import ServerConfig

        with pytest.raises(ValueError):
            ServerConfig(host_states=0)
