"""Tests for DRAM refresh modeling."""

import dataclasses

import pytest

from repro.lowering.im2col import LoweredGemv
from repro.pim.config import HBM_VALIDATION, NEWTON_PLUS_PLUS, PimConfig, PimTiming
from repro.pim.cost import gemv_cost


def _gemv():
    return LoweredGemv(rows=128, k=512, n=128, contiguous_k=512, strided=False)


class TestRefresh:
    def test_refresh_overhead_fraction(self):
        t = PimTiming(t_refi=6240, t_rfc=280)
        assert t.refresh_overhead == pytest.approx(280 / 6240)

    def test_zero_refi_disables_refresh(self):
        t = PimTiming(t_refi=0)
        assert t.refresh_overhead == 0.0

    def test_refresh_slows_kernels(self):
        with_refresh = PimConfig()
        without = dataclasses.replace(
            with_refresh, timing=dataclasses.replace(with_refresh.timing,
                                                     t_refi=0))
        slow = gemv_cost(_gemv(), with_refresh, NEWTON_PLUS_PLUS).cycles
        fast = gemv_cost(_gemv(), without, NEWTON_PLUS_PLUS).cycles
        assert slow > fast
        assert slow / fast == pytest.approx(
            1 + with_refresh.timing.refresh_overhead, rel=0.01)

    def test_hbm_preset_structure(self):
        assert HBM_VALIDATION.num_channels == 24
        assert HBM_VALIDATION.banks_per_channel == 16
