"""Memoization must never change what the cost models compute.

Three layers of caching are exercised: the GPU kernel-cost memo, the
PIM GEMV-cost memo, and the in-memory measurement memo behind
``PimFlow.profile`` — each compared against an uncached evaluation.
The graph-level ``toposort`` cache is checked for correct invalidation
under mutation.
"""

import json

import pytest

from repro.gpu.device import GpuDevice
from repro.graph.node import Node
from repro.graph.tensor import TensorInfo
from repro.lowering.im2col import LoweredGemv
from repro.models import build_model
from repro.pim.device import PimDevice
from repro.pimflow import PimFlow, PimFlowConfig


class TestGpuCostMemo:
    def test_memoized_costs_equal_fresh_device(self):
        graph = build_model("mobilenet-v2")
        warm = GpuDevice()
        first = [warm.run_node(n, graph) for n in graph.nodes]
        assert warm.cost_cache_hits > 0  # repeated blocks share structure
        second = [warm.run_node(n, graph) for n in graph.nodes]
        fresh = [GpuDevice().run_node(n, graph) for n in graph.nodes]
        assert first == second == fresh

    def test_cache_keys_ignore_node_name_and_device(self):
        graph = build_model("toy")
        dev = GpuDevice()
        node = graph.nodes[0]
        dev.run_node(node, graph)
        renamed = node.clone(name="other", device="gpu")
        dev.run_node(renamed, graph)
        assert dev.cost_cache_hits == 1


class TestPimCostMemo:
    def test_memoized_costs_equal_fresh_device(self):
        gemvs = [
            LoweredGemv(rows=r, k=k, n=n, contiguous_k=c, strided=s)
            for (r, k, n, c, s) in [(8, 32, 24, 32, False),
                                    (196, 576, 128, 64, True),
                                    (49, 1024, 256, 1024, False)]
        ]
        warm = PimDevice()
        first = [warm.run_gemv(g) for g in gemvs]
        second = [warm.run_gemv(g) for g in gemvs]
        assert warm.cost_cache_hits == len(gemvs)
        fresh = [PimDevice().run_gemv(g) for g in gemvs]
        assert first == second == fresh

    def test_cache_limit_resets_instead_of_growing(self):
        dev = PimDevice()
        dev.COST_CACHE_LIMIT = 2
        for k in (16, 32, 64, 128):
            dev.run_gemv(LoweredGemv(4, k, 8, k, False))
        assert len(dev._cost_cache) <= 2


class TestToposortCache:
    def test_repeated_calls_reuse_cache_and_stay_correct(self):
        g = build_model("toy")
        first = g.toposort()
        version = g.version
        second = g.toposort()
        assert [n.name for n in first] == [n.name for n in second]
        assert g.version == version  # pure reads don't invalidate
        # Callers get independent lists: mutating one must not corrupt
        # the cache.
        second.reverse()
        assert [n.name for n in g.toposort()] == [n.name for n in first]

    def test_add_and_remove_node_invalidate(self):
        g = build_model("toy")
        before = [n.name for n in g.toposort()]
        last = g.nodes[-1]
        src = last.outputs[0]
        g.add_tensor(TensorInfo("tail_out", g.tensors[src].shape,
                                g.tensors[src].dtype))
        extra = Node("tail_relu", "Relu", [src], ["tail_out"])
        g.add_node(extra)
        assert [n.name for n in g.toposort()] == before + ["tail_relu"]
        g.remove_node("tail_relu")
        assert [n.name for n in g.toposort()] == before

    def test_touch_bumps_version(self):
        g = build_model("toy")
        v = g.version
        g.touch()
        assert g.version == v + 1


class TestMeasurementTableUnchanged:
    """The memoized profile must be byte-identical to the uncached one."""

    @pytest.mark.parametrize("model", ["toy", "mobilenet-v2"])
    def test_memoized_profile_matches_uncached(self, model):
        graph = build_model(model)
        memo = PimFlow(PimFlowConfig(mechanism="pimflow")).profile(graph)
        plain = PimFlow(PimFlowConfig(mechanism="pimflow",
                                      memoize=False)).profile(graph)
        assert json.dumps(memo.to_dict(), sort_keys=True) == \
            json.dumps(plain.to_dict(), sort_keys=True)
