"""Tests for the inference server: byte-identity, metrics, lifecycle."""

import numpy as np
import pytest

from repro.runtime.executor import PlanExecutor
from repro.serve import (
    InferenceServer,
    ModelRepository,
    ServerConfig,
    UnknownModel,
    serve_plans,
)
from repro.serve.loadgen import feeds_for, run_closed_loop


def _server(plan, **kwargs):
    repo = ModelRepository()
    repo.register_plan("toy", plan)
    defaults = dict(workers=2, max_batch_size=4, max_wait_ms=20.0)
    defaults.update(kwargs)
    return InferenceServer(repo, ServerConfig(**defaults))


class TestByteIdentity:
    def test_batched_serving_matches_per_request_infer(self, toy_plan):
        """Acceptance: results are byte-identical to direct
        ``PlanExecutor.infer``, no matter how requests were batched."""
        n = 12
        feeds = [feeds_for(toy_plan.graph, seed=i) for i in range(n)]
        direct = PlanExecutor(toy_plan)
        expected = [direct.infer(f) for f in feeds]

        # Submit asynchronously so requests pile up and coalesce.
        with _server(toy_plan, workers=1, max_wait_ms=50.0) as server:
            handles = [server.submit("toy", f) for f in feeds]
            got = [h.result(timeout=60.0) for h in handles]

        batched = [r for r in got if r.batch_size > 1]
        assert batched, "workload never coalesced; batching untested"
        for resp, want in zip(got, expected):
            assert set(resp.outputs) == set(want)
            for name in want:
                # Bitwise equality, not allclose: batching must not
                # perturb numerics at all.
                assert np.array_equal(resp.outputs[name], want[name]), (
                    f"request {resp.request_id} output {name} differs "
                    f"(batch_size={resp.batch_size})")

    def test_response_telemetry_is_consistent(self, toy_plan):
        with _server(toy_plan) as server:
            resp = server.infer("toy", feeds_for(toy_plan.graph, 0))
        assert resp.model == "toy"
        assert resp.batch_size >= 1
        assert resp.latency_ms >= resp.queue_ms >= 0.0
        assert resp.device_batch_us > 0
        assert resp.device_us == pytest.approx(
            resp.device_batch_us / resp.batch_size)


class TestMetrics:
    def test_snapshot_accounting_balances(self, toy_plan):
        with _server(toy_plan) as server:
            result = run_closed_loop(server, "toy", clients=3,
                                     requests_per_client=4)
            snap = server.stats()
        assert result.completed == result.offered == 12
        assert snap["submitted"] == 12
        assert snap["completed"] == 12
        # Every submitted request is accounted for exactly once.
        assert (snap["completed"] + snap["rejected"]
                + snap["expired_deadline"] + snap["failed"]) == 12
        sizes = {int(k): v for k, v in snap["batch_histogram"].items()}
        assert sum(k * v for k, v in sizes.items()) == 12
        assert sum(sizes.values()) == snap["batches"]
        assert max(sizes) <= 4  # never beyond max_batch_size
        assert snap["mean_batch_size"] == pytest.approx(12 / snap["batches"])
        model = snap["models"]["toy"]
        assert model["completed"] == 12
        assert model["latency_p99_ms"] >= model["latency_p50_ms"] > 0
        assert model["device_throughput_rps"] > 0
        assert snap["repository"]["loaded"] == 1
        assert snap["config"]["max_batch_size"] == 4

    def test_unknown_model_is_typed_and_counted(self, toy_plan):
        with _server(toy_plan) as server:
            with pytest.raises(UnknownModel) as exc:
                server.infer("nope", {})
            assert "toy" in exc.value.known
            assert server.stats()["rejected_unknown_model"] == 1


class TestDeadlines:
    def test_expired_request_gets_typed_error(self, toy_plan):
        from repro.serve import DeadlineExceeded

        repo = ModelRepository()
        repo.register_plan("toy", toy_plan)
        server = InferenceServer(repo, ServerConfig(
            workers=1, max_batch_size=1, max_wait_ms=0))
        # Submit before starting workers so the deadline lapses queued.
        handle = server.submit("toy", feeds_for(toy_plan.graph, 0),
                               deadline_ms=0.0)
        import time
        time.sleep(0.01)
        with server:
            with pytest.raises(DeadlineExceeded) as exc:
                handle.result(timeout=10.0)
        assert exc.value.code == "deadline_exceeded"
        assert server.stats()["expired_deadline"] == 1


class TestLifecycle:
    def test_stop_without_drain_fails_queued_requests(self, toy_plan):
        from repro.serve import ServerClosed

        repo = ModelRepository()
        repo.register_plan("toy", toy_plan)
        server = InferenceServer(repo)  # never started: nothing drains
        handle = server.submit("toy", feeds_for(toy_plan.graph, 0))
        server.stop(drain=False)
        with pytest.raises(ServerClosed):
            handle.result(timeout=1.0)

    def test_submit_after_stop_raises(self, toy_plan):
        from repro.serve import ServerClosed

        server = _server(toy_plan)
        with server:
            pass
        with pytest.raises(ServerClosed):
            server.submit("toy", feeds_for(toy_plan.graph, 0))

    def test_serve_plans_helper(self, toy_plan):
        server = serve_plans({"a": toy_plan, "b": toy_plan})
        assert sorted(server.repository.names()) == ["a", "b"]
        with server:
            resp = server.infer("b", feeds_for(toy_plan.graph, 1))
        assert resp.model == "b"

    def test_two_models_one_server(self, toy_plan, toy_gpu_plan):
        """Model-affine batching across interleaved multi-model load."""
        server = serve_plans({"pim": toy_plan, "gpu": toy_gpu_plan},
                             ServerConfig(workers=2, max_batch_size=4,
                                          max_wait_ms=10.0))
        with server:
            handles = []
            for i in range(8):
                model = "pim" if i % 2 else "gpu"
                handles.append((model, server.submit(
                    model, feeds_for(toy_plan.graph, i))))
            for model, h in handles:
                assert h.result(timeout=30.0).model == model
        snap = server.stats()
        assert snap["completed"] == 8
        assert set(snap["models"]) == {"pim", "gpu"}
