"""Tests for the NHWC layout math behind the memory optimizer."""

from repro.lowering.layout import (
    concat_is_contiguous,
    nhwc_strides,
    pad_offset_bytes,
    slice_is_contiguous,
)


class TestStrides:
    def test_dense_nhwc(self):
        sn, sh, sw, sc = nhwc_strides((1, 14, 14, 8))
        assert sc == 2
        assert sw == 8 * 2
        assert sh == 14 * 8 * 2
        assert sn == 14 * 14 * 8 * 2


class TestSliceContiguity:
    def test_h_slice_of_batch1_is_contiguous(self):
        assert slice_is_contiguous((1, 14, 14, 8), axis=1)

    def test_h_slice_of_batch2_is_not(self):
        assert not slice_is_contiguous((2, 14, 14, 8), axis=1)

    def test_w_slice_is_not_contiguous(self):
        assert not slice_is_contiguous((1, 14, 14, 8), axis=2)

    def test_channel_slice_is_not_contiguous(self):
        assert not slice_is_contiguous((1, 14, 14, 8), axis=3)

    def test_gemm_column_slice_batch1(self):
        assert slice_is_contiguous((1, 4096), axis=1)
        assert not slice_is_contiguous((64, 4096), axis=1)

    def test_negative_axis(self):
        assert slice_is_contiguous((1, 1, 8), axis=-1)


class TestConcatContiguity:
    def test_h_concat_batch1(self):
        assert concat_is_contiguous([(1, 7, 14, 8), (1, 7, 14, 8)], axis=1)

    def test_mismatched_non_axis_dims(self):
        assert not concat_is_contiguous([(1, 7, 14, 8), (1, 7, 13, 8)], axis=1)

    def test_channel_concat_not_contiguous(self):
        assert not concat_is_contiguous([(1, 7, 14, 8), (1, 7, 14, 8)], axis=3)

    def test_empty(self):
        assert not concat_is_contiguous([], axis=1)

    def test_rank_mismatch(self):
        assert not concat_is_contiguous([(1, 7, 14, 8), (7, 14, 8)], axis=1)


class TestPadOffset:
    def test_no_padding(self):
        assert pad_offset_bytes((1, 14, 14, 8), (0, 0, 0, 0)) == 0

    def test_top_left_padding(self):
        # One padded row of (14+2) pixels x 8ch x 2B, plus one pixel.
        off = pad_offset_bytes((1, 14, 14, 8), (1, 1, 1, 1))
        assert off == 16 * 8 * 2 + 8 * 2
