"""Public API surface checks: every module imports, exports resolve."""

import importlib
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.graph", "repro.models", "repro.lowering", "repro.pim",
    "repro.gpu", "repro.dram", "repro.memsys", "repro.transform",
    "repro.search", "repro.codegen", "repro.runtime", "repro.energy",
    "repro.analysis", "repro.exec",
]


class TestImports:
    @pytest.mark.parametrize("package", SUBPACKAGES)
    def test_subpackage_imports(self, package):
        importlib.import_module(package)

    @pytest.mark.parametrize("package", SUBPACKAGES + ["repro"])
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_every_module_imports(self):
        """Walk the whole package: no module may fail to import."""
        failures = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            try:
                importlib.import_module(info.name)
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append((info.name, exc))
        assert not failures

    def test_top_level_api(self):
        assert callable(repro.build_model)
        assert callable(repro.PimFlow)
        assert repro.__version__


class TestConfigVariants:
    def test_fuse_disabled_still_runs(self):
        from repro.pimflow import PimFlow, PimFlowConfig

        toy = repro.build_model("toy")
        result = PimFlow(PimFlowConfig(mechanism="gpu", fuse=False)).run(toy)
        assert result.makespan_us > 0

    def test_two_buffer_variant(self):
        """GWRITE_2 (two global buffers) sits between one and four."""
        from repro.lowering.im2col import LoweredGemv
        from repro.pim.config import PimConfig, PimOptimizations
        from repro.pim.cost import gemv_cost

        gemv = LoweredGemv(rows=256, k=192, n=64, contiguous_k=192,
                           strided=False)
        cfg = PimConfig()
        times = {
            nb: gemv_cost(gemv, cfg, PimOptimizations(
                num_gwrite_buffers=nb)).cycles
            for nb in (1, 2, 4)
        }
        assert times[4] <= times[2] <= times[1]
