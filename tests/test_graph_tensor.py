"""Unit tests for tensor metadata."""

import pytest

from repro.graph.tensor import DTYPE_SIZES, TensorInfo


class TestTensorInfo:
    def test_basic_properties(self):
        t = TensorInfo("x", (1, 14, 14, 8))
        assert t.rank == 4
        assert t.num_elements == 14 * 14 * 8
        assert t.num_bytes == 14 * 14 * 8 * 2  # default fp16

    def test_dtype_sizes(self):
        for dtype, size in DTYPE_SIZES.items():
            t = TensorInfo("x", (4,), dtype)
            assert t.num_bytes == 4 * size

    def test_scalar_like(self):
        t = TensorInfo("s", (1,))
        assert t.num_elements == 1

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            TensorInfo("", (1,))

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            TensorInfo("x", (1,), "float64")

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            TensorInfo("x", (1, 0, 4))
        with pytest.raises(ValueError):
            TensorInfo("x", (1, -3))

    def test_shape_normalized_to_ints(self):
        import numpy as np
        t = TensorInfo("x", (np.int64(2), np.int64(3)))
        assert all(type(d) is int for d in t.shape)

    def test_with_shape_and_name(self):
        t = TensorInfo("x", (1, 2))
        t2 = t.with_shape((3, 4))
        assert t2.name == "x" and t2.shape == (3, 4)
        t3 = t.with_name("y")
        assert t3.name == "y" and t3.shape == (1, 2)

    def test_frozen(self):
        t = TensorInfo("x", (1, 2))
        with pytest.raises(Exception):
            t.name = "y"

    def test_equality(self):
        assert TensorInfo("x", (1, 2)) == TensorInfo("x", (1, 2))
        assert TensorInfo("x", (1, 2)) != TensorInfo("x", (2, 1))
