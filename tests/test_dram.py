"""Tests for the request-level DRAM channel simulator."""

import pytest

from repro.dram.bank import Bank, DramTiming
from repro.dram.controller import BlockedInterval, ChannelController
from repro.dram.request import (
    Request,
    random_trace,
    streaming_trace,
    strided_trace,
)


class TestBank:
    def test_row_hit_is_cheap(self):
        t = DramTiming()
        bank = Bank(t)
        first = bank.access(row=5, now=0)
        second = bank.access(row=5, now=bank.ready_at)
        assert bank.row_hits == 1
        assert bank.row_misses == 1
        # A hit needs only CAS; a miss additionally pays tRCD.
        assert first - 0 == t.t_rcd + t.t_cl
        assert second - bank.ready_at < first

    def test_row_conflict_pays_precharge(self):
        t = DramTiming()
        bank = Bank(t)
        bank.access(row=1, now=0)
        done = bank.access(row=2, now=100)
        assert bank.row_conflicts == 1
        assert done >= 100 + t.t_rp + t.t_rcd + t.t_cl

    def test_tras_respected(self):
        t = DramTiming()
        bank = Bank(t)
        bank.access(row=1, now=0)
        # Immediately conflicting: the precharge must wait for tRAS.
        done = bank.access(row=2, now=0)
        assert done >= t.t_ras + t.t_rp + t.t_rcd + t.t_cl


class TestTraces:
    def test_streaming_has_high_locality(self):
        ctrl = ChannelController()
        stats = ctrl.simulate(streaming_trace(256 * 1024))
        assert stats.hit_rate > 0.9

    def test_random_has_low_locality(self):
        ctrl = ChannelController()
        stats = ctrl.simulate(random_trace(256 * 1024))
        assert stats.hit_rate < 0.3

    def test_strided_in_between(self):
        hit = {}
        for name, trace in [
            ("stream", streaming_trace(128 * 1024)),
            ("strided", strided_trace(128 * 1024, stride_bursts=16)),
            ("random", random_trace(128 * 1024)),
        ]:
            hit[name] = ChannelController().simulate(trace).hit_rate
        assert hit["stream"] > hit["strided"] > hit["random"]

    def test_streaming_bandwidth_near_peak(self):
        # Peak is one 32B burst per tCCD=2 cycles = 16 B/cycle.
        stats = ChannelController().simulate(streaming_trace(512 * 1024))
        assert stats.bandwidth_bytes_per_cycle() > 0.8 * 16

    def test_random_bandwidth_much_lower(self):
        stats = ChannelController().simulate(random_trace(64 * 1024))
        assert stats.bandwidth_bytes_per_cycle() < 0.6 * 16

    def test_all_requests_served(self):
        trace = streaming_trace(32 * 1024)
        stats = ChannelController().simulate(trace)
        assert stats.requests == len(trace)


class TestBlockedIntervals:
    def test_blocking_slows_stream(self):
        trace = streaming_trace(64 * 1024)
        free = ChannelController().simulate(trace)
        blocked = ChannelController().simulate(trace, blocked=[
            BlockedInterval(100, 600), BlockedInterval(1500, 2000)])
        assert blocked.finish_cycle > free.finish_cycle
        assert blocked.stalled_cycles > 0

    def test_small_blocking_small_slowdown(self):
        """The paper's contention result: sparse PIM windows barely hurt."""
        trace = streaming_trace(256 * 1024)
        free = ChannelController().simulate(trace)
        span = free.finish_cycle
        # 1% of the timeline blocked, in short windows.
        blocks = [BlockedInterval(int(span * f), int(span * f) + span // 400)
                  for f in (0.2, 0.4, 0.6, 0.8)]
        blocked = ChannelController().simulate(trace, blocked=blocks)
        slowdown = blocked.finish_cycle / free.finish_cycle
        assert 1.0 <= slowdown < 1.03

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            BlockedInterval(5, 5)


class TestControllerBasics:
    def test_zero_banks_rejected(self):
        with pytest.raises(ValueError):
            ChannelController(banks=0)

    def test_empty_stream(self):
        stats = ChannelController().simulate([])
        assert stats.finish_cycle == 0
        assert stats.requests == 0

    def test_fr_fcfs_prefers_open_rows(self):
        # Two requests to row A, one interleaved to row B, all at t=0:
        # the scheduler should batch the row-A hits.
        ctrl = ChannelController(banks=1)
        reqs = [
            Request(0, 0, row=1, column=0),
            Request(0, 0, row=2, column=0),
            Request(0, 0, row=1, column=1),
        ]
        stats = ctrl.simulate(reqs)
        assert stats.row_hits >= 1


class TestMultiChannelMemory:
    def test_aggregate_bandwidth_scales_with_channels(self):
        from repro.dram.memory import MultiChannelMemory
        from repro.dram.request import streaming_trace

        # Saturating arrival rate so capacity, not the request stream,
        # limits throughput.
        trace = streaming_trace(512 * 1024, arrival_rate=32.0)
        bw = {}
        for channels in (4, 16):
            stats = MultiChannelMemory(channels=channels).simulate(trace)
            bw[channels] = stats.aggregate_bandwidth_bytes_per_cycle()
        # Sub-linear: fine-grained interleave shreds per-channel row
        # locality as the channel count grows — a real DRAM effect.
        assert bw[16] > 1.5 * bw[4]

    def test_consistent_with_gpu_config_bandwidth(self):
        """The request-level simulator and the roofline GPU model must
        agree on per-channel streaming bandwidth within ~2x."""
        from repro.dram.memory import MultiChannelMemory
        from repro.dram.request import streaming_trace
        from repro.gpu.config import RTX2060

        stats = MultiChannelMemory(channels=1).simulate(
            streaming_trace(1024 * 1024))
        # Simulator bandwidth at 1 GHz, bytes/us:
        sim_bw = stats.aggregate_bandwidth_bytes_per_cycle() * 1e3
        roofline_bw = (RTX2060.bandwidth_bytes_per_us / RTX2060.mem_channels
                       * RTX2060.base_memory_efficiency)
        assert 0.5 < sim_bw / roofline_bw < 2.0

    def test_all_requests_served(self):
        from repro.dram.memory import MultiChannelMemory
        from repro.dram.request import random_trace

        trace = random_trace(64 * 1024)
        stats = MultiChannelMemory(channels=8).simulate(trace)
        assert stats.total_requests == len(trace)

    def test_invalid_channels_rejected(self):
        from repro.dram.memory import MultiChannelMemory

        with pytest.raises(ValueError):
            MultiChannelMemory(channels=0)
