"""Tests for the compilation report."""

import json

import pytest

from repro.analysis.report import compilation_report, format_report
from repro.models import build_model
from repro.pimflow import PimFlow, PimFlowConfig


@pytest.fixture(scope="module")
def compiled_run():
    flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
    compiled = flow.compile(build_model("toy"))
    result = flow.engine.run(compiled.graph)
    return compiled, result


class TestReport:
    def test_counts_consistent(self, compiled_run):
        compiled, result = compiled_run
        report = compilation_report(compiled, result)
        counts = report["decision_counts"]
        assert (counts["gpu"] + counts["split"] + counts["full_offload"]
                + counts["pipeline"]) == len(compiled.decisions)

    def test_timings_present(self, compiled_run):
        compiled, result = compiled_run
        report = compilation_report(compiled, result)
        assert report["makespan_us"] == pytest.approx(result.makespan_us)
        assert report["energy"]["total_mj"] > 0

    def test_json_serializable(self, compiled_run):
        report = compilation_report(*compiled_run)
        json.dumps(report)  # must not raise

    def test_format_lines(self, compiled_run):
        report = compilation_report(*compiled_run)
        lines = format_report(report)
        assert any("decisions:" in line for line in lines)
        assert any("energy" in line for line in lines)

    def test_region_truncation(self, compiled_run):
        report = compilation_report(*compiled_run)
        lines = format_report(report, max_regions=1)
        non_gpu = [r for r in report["regions"] if r["mode"] != "gpu"]
        if len(non_gpu) > 1:
            assert any("..." in line for line in lines)


class TestNewtonMechanism:
    def test_newton_slower_than_newton_plus(self):
        """The original Newton's coarse g_act scheduling costs it."""
        model = build_model("toy")
        newton = PimFlow(PimFlowConfig(mechanism="newton")).run(model)
        plus = PimFlow(PimFlowConfig(mechanism="newton+")).run(model)
        assert plus.makespan_us <= newton.makespan_us + 1e-6

    def test_newton_policy_in_cli(self):
        from repro.cli import POLICIES
        assert POLICIES["Newton"] == "newton"
