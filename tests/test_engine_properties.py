"""Property-based invariants of the execution engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.gpu.device import GpuDevice
from repro.pim.device import PimDevice
from repro.runtime.engine import ExecutionEngine


def _random_chain_graph(seed, num_layers, channels, place_pim):
    """A conv chain with randomized per-layer device placement."""
    b = GraphBuilder("prop", seed=seed)
    x = b.input("x", (1, 14, 14, channels))
    names = []
    for i in range(num_layers):
        x = b.conv(x, cout=channels, kernel=1, name=f"c{i}")
        names.append(f"c{i}")
    b.output(x)
    g = b.build()
    for i, name in enumerate(names):
        if place_pim[i % len(place_pim)]:
            g.node(name).device = "pim"
        else:
            g.node(name).device = "gpu"
    return g


@pytest.fixture(scope="module")
def engine():
    return ExecutionEngine(GpuDevice(), PimDevice())


class TestEngineInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 100),
        num_layers=st.integers(1, 8),
        channels=st.sampled_from([16, 64, 128]),
        place_pim=st.lists(st.booleans(), min_size=1, max_size=4),
    )
    def test_schedule_invariants(self, engine, seed, num_layers, channels,
                                 place_pim):
        g = _random_chain_graph(seed, num_layers, channels, place_pim)
        result = engine.run(g)
        # Makespan covers every event.
        assert all(e.finish_us <= result.makespan_us + 1e-9
                   for e in result.events)
        # Events never run backwards.
        assert all(e.finish_us >= e.start_us for e in result.events)
        # Busy times are bounded by the makespan.
        assert result.gpu_busy_us <= result.makespan_us + 1e-9
        assert result.pim_busy_us <= result.makespan_us + 1e-9
        # Energy is positive and finite.
        assert 0 < result.energy.total_mj < float("inf")
        # A chain serializes: makespan >= sum of kernel durations minus
        # nothing (no overlap possible along a dependency chain).
        durations = sum(e.duration_us for e in result.events)
        assert result.makespan_us >= durations * 0.99 - 1e-6

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50), num_layers=st.integers(2, 6))
    def test_device_serialization(self, engine, seed, num_layers):
        """Events on one device never overlap each other."""
        g = _random_chain_graph(seed, num_layers, 64, [True, False])
        result = engine.run(g)
        for device in ("gpu", "pim"):
            events = sorted((e for e in result.events if e.device == device),
                            key=lambda e: e.start_us)
            for a, b in zip(events, events[1:]):
                assert b.start_us >= a.finish_us - 1e-9

    def test_deterministic(self, engine):
        g = _random_chain_graph(7, 5, 64, [True, False])
        r1 = engine.run(g)
        r2 = engine.run(g)
        assert r1.makespan_us == r2.makespan_us
        assert [e.finish_us for e in r1.events] == \
            [e.finish_us for e in r2.events]
