"""Tests for the PIM timing rules and command representation."""

import pytest

from repro.pim.commands import CmdKind, CommandTrace, PimCommand, RESOURCE
from repro.pim.config import PimConfig
from repro.pim.timing import (
    command_cycles,
    comp_cycles,
    cycles_to_us,
    g_act_cycles,
    gwrite_cycles,
    readres_cycles,
)

CFG = PimConfig()


class TestLatencies:
    def test_gwrite_pays_issue_plus_transfer(self):
        t = CFG.timing
        assert gwrite_cycles(64, 1, 1, CFG) == t.t_cl + 2
        assert gwrite_cycles(32, 1, 1, CFG) == t.t_cl + 1

    def test_gwrite_minimum_one_transfer_cycle(self):
        assert gwrite_cycles(1, 1, 1, CFG) == CFG.timing.t_cl + 1

    def test_gact_is_trcdrd(self):
        assert g_act_cycles(CFG) == CFG.timing.t_rcdrd == 25

    def test_comp_scales_with_ops(self):
        assert comp_cycles(10, CFG) == 10 * CFG.timing.t_ccd
        assert comp_cycles(0, CFG) == CFG.timing.t_ccd  # floor of one op

    def test_readres_like_gwrite(self):
        assert readres_cycles(320, CFG) == CFG.timing.t_cl + 10

    def test_command_cycles_dispatch(self):
        assert command_cycles(PimCommand(CmdKind.G_ACT), CFG) == 25
        assert command_cycles(PimCommand(CmdKind.COMP, ops=4), CFG) == 8
        assert command_cycles(
            PimCommand(CmdKind.GWRITE, bytes=64), CFG) == 13
        assert command_cycles(
            PimCommand(CmdKind.READRES, bytes=64), CFG) == 13

    def test_cycles_to_us(self):
        assert cycles_to_us(1000, CFG) == pytest.approx(1.0)  # 1 GHz
        import dataclasses
        fast = dataclasses.replace(CFG, clock_ghz=2.0)
        assert cycles_to_us(1000, fast) == pytest.approx(0.5)


class TestCommands:
    def test_resource_mapping(self):
        assert RESOURCE[CmdKind.GWRITE] == "io"
        assert RESOURCE[CmdKind.READRES] == "io"
        assert RESOURCE[CmdKind.G_ACT] == "compute"
        assert RESOURCE[CmdKind.COMP] == "compute"

    def test_trace_add_returns_index(self):
        trace = CommandTrace()
        assert trace.add(0, PimCommand(CmdKind.GWRITE, bytes=32)) == 0
        assert trace.add(0, PimCommand(CmdKind.G_ACT)) == 1
        assert trace.add(1, PimCommand(CmdKind.GWRITE, bytes=32)) == 0

    def test_trace_counts(self):
        trace = CommandTrace()
        trace.add(0, PimCommand(CmdKind.GWRITE, bytes=32))
        trace.add(0, PimCommand(CmdKind.COMP, ops=1))
        trace.add(1, PimCommand(CmdKind.COMP, ops=1))
        assert trace.counts() == {"GWRITE": 1, "COMP": 2}
        assert trace.num_commands == 3

    def test_command_is_frozen(self):
        cmd = PimCommand(CmdKind.COMP, ops=1)
        with pytest.raises(Exception):
            cmd.ops = 2


class TestConfigDerived:
    def test_macs_per_comp(self):
        assert CFG.macs_per_comp == 256

    def test_buffer_capacity(self):
        assert CFG.buffer_capacity_elems == 2048

    def test_weights_per_activation(self):
        assert CFG.weights_per_activation == 1024 * 16

    def test_invalid_buffers_rejected(self):
        from repro.pim.config import PimOptimizations
        with pytest.raises(ValueError):
            PimOptimizations(num_gwrite_buffers=3)
