"""Tests for region extraction and profiling."""

import numpy as np
import pytest

from repro.gpu.device import GpuDevice
from repro.pim.device import PimDevice
from repro.runtime.engine import ExecutionEngine
from repro.runtime.numerical import execute
from repro.search.profiler import (
    extract_subgraph,
    profile_pipeline,
    profile_split,
)


@pytest.fixture
def engine():
    return ExecutionEngine(GpuDevice(), PimDevice())


class TestExtractSubgraph:
    def test_single_node_region(self, pointwise_chain_graph):
        region = extract_subgraph(pointwise_chain_graph, ["dw1"])
        region.validate()
        assert len(region) == 1
        assert len(region.inputs) == 1
        assert region.outputs == [pointwise_chain_graph.node("dw1").outputs[0]]

    def test_chain_region(self, pointwise_chain_graph):
        region = extract_subgraph(pointwise_chain_graph,
                                  ["pw1", "act1", "dw1"])
        region.validate()
        assert len(region) == 3
        assert region.inputs == ["x"]

    def test_weights_carried(self, pointwise_chain_graph):
        region = extract_subgraph(pointwise_chain_graph, ["pw1"])
        w = pointwise_chain_graph.node("pw1").inputs[1]
        assert w in region.initializers

    def test_region_is_executable(self, pointwise_chain_graph, rng):
        region = extract_subgraph(pointwise_chain_graph, ["dw1"])
        feed_shape = region.tensors[region.inputs[0]].shape
        out = execute(region, {region.inputs[0]:
                               rng.standard_normal(feed_shape)})
        assert len(out) == 1

    def test_region_matches_full_graph_numerics(self, pointwise_chain_graph,
                                                rng):
        feed = {"x": rng.standard_normal((1, 14, 14, 8))}
        full = execute(pointwise_chain_graph, feed)
        region = extract_subgraph(
            pointwise_chain_graph,
            [n.name for n in pointwise_chain_graph.nodes])
        out = execute(region, feed)
        for k in full:
            np.testing.assert_allclose(full[k], out[k], atol=1e-5)

    def test_missing_node_rejected(self, pointwise_chain_graph):
        with pytest.raises(KeyError):
            extract_subgraph(pointwise_chain_graph, ["nope"])

    def test_graph_output_preserved(self, pointwise_chain_graph):
        region = extract_subgraph(pointwise_chain_graph, ["pw2"])
        assert region.outputs == pointwise_chain_graph.outputs


class TestProfileSplit:
    def test_all_ratios_measured(self, small_conv_graph, engine):
        results = profile_split(small_conv_graph, "c0", engine,
                                [0.0, 0.5, 1.0])
        assert set(results) == {0.0, 0.5, 1.0}
        assert all(v > 0 for v in results.values())

    def test_split_beats_worse_device_for_balanced_layer(self, engine):
        from repro.graph.builder import GraphBuilder
        b = GraphBuilder(seed=20)
        x = b.input("x", (1, 14, 14, 192))
        b.output(b.conv(x, cout=1152, kernel=1, name="c"))
        g = b.build()
        res = profile_split(g, "c", engine,
                            [round(0.1 * i, 1) for i in range(11)])
        best = min(res.values())
        # The paper's core claim: splitting beats both extremes when
        # neither device dominates.
        assert best <= res[0.0]
        assert best <= res[1.0]

    def test_unsplittable_ratio_skipped(self, fc_graph, engine):
        # Non-constant weights cannot split at interior ratios; wire a
        # MatMul on two activations.
        from repro.graph.builder import GraphBuilder
        b = GraphBuilder()
        a = b.input("a", (1, 8))
        w = b.input("w", (8, 4))
        b.output(b.matmul(a, w, name="mm"))
        g = b.build()
        res = profile_split(g, "mm", engine, [0.0, 0.5, 1.0])
        assert 0.5 not in res
        assert {0.0, 1.0} <= set(res)


class TestProfilePipeline:
    def test_measures_chain(self, pointwise_chain_graph, engine):
        t = profile_pipeline(pointwise_chain_graph, ("pw1", "act1", "dw1"),
                             engine, num_stages=2)
        assert t is not None and t > 0

    def test_unsplittable_returns_none(self, engine):
        from repro.graph.builder import GraphBuilder
        b = GraphBuilder(seed=21)
        x = b.input("x", (1, 3, 8, 8))
        y = b.conv(x, cout=8, kernel=1, name="pw")
        y = b.dwconv(y, kernel=3, stride=2, name="dw")  # out H = 2
        b.output(y)
        g = b.build()
        t = profile_pipeline(g, ("pw", "dw"), engine, num_stages=4)
        assert t is None


class TestProfileGpu:
    def test_gpu_region_time(self, pointwise_chain_graph, engine):
        from repro.search.profiler import profile_gpu

        t = profile_gpu(pointwise_chain_graph, ["pw1", "act1"], engine)
        assert t > 0
        single = profile_gpu(pointwise_chain_graph, ["pw1"], engine)
        assert t > single
