"""Tests for the value-carrying PIM machine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.lowering.im2col import (
    LoweredGemv,
    im2col_matrix,
    lower_conv,
    lowered_weight_matrix,
)
from repro.lowering.tiling import tile_over_channels
from repro.pim.config import (
    NEWTON_PLUS,
    NEWTON_PLUS_PLUS,
    PimConfig,
    PimOptimizations,
)
from repro.pim.machine import (
    GlobalBuffer,
    MachineError,
    ResultLatches,
    execute_gemv_machine,
    execute_tile_machine,
)
from repro.runtime.numerical import conv2d_nhwc

CFG = PimConfig()


def _gemv(rows, k, n):
    return LoweredGemv(rows=rows, k=k, n=n, contiguous_k=k, strided=False)


class TestArchitecturalState:
    def test_buffer_capacity_enforced(self):
        buf = GlobalBuffer(capacity_elems=8)
        buf.gwrite(np.ones(8))
        with pytest.raises(MachineError):
            buf.gwrite(np.ones(9))

    def test_comp_before_gwrite_rejected(self):
        buf = GlobalBuffer(capacity_elems=8)
        with pytest.raises(MachineError):
            buf.read()

    def test_latches_accumulate_and_drain(self):
        latches = ResultLatches()
        latches.accumulate(0, np.array([1.0, 2.0]))
        latches.accumulate(0, np.array([3.0, 4.0]))
        np.testing.assert_array_equal(latches.readres(0), [4.0, 6.0])
        assert latches.pending() == 0

    def test_readres_without_results_rejected(self):
        with pytest.raises(MachineError):
            ResultLatches().readres(3)


class TestMachineCorrectness:
    @pytest.mark.parametrize("rows,k,n,opts", [
        (8, 64, 32, NEWTON_PLUS),          # single pass, one buffer
        (8, 64, 32, NEWTON_PLUS_PLUS),     # four buffers
        (5, 4096, 48, NEWTON_PLUS_PLUS),   # K > capacity: two passes
        (1, 8192, 16, NEWTON_PLUS),        # GEMV with four passes
        (7, 100, 3, NEWTON_PLUS_PLUS),     # K-split partial tiles
    ])
    def test_matches_matmul(self, rng, rows, k, n, opts):
        x = rng.standard_normal((rows, k)).astype(np.float32)
        w = rng.standard_normal((k, n)).astype(np.float32)
        out = execute_gemv_machine(x, w, _gemv(rows, k, n), CFG, opts)
        np.testing.assert_allclose(out, x @ w, rtol=1e-3, atol=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 12),
        k=st.integers(16, 5000),
        n=st.integers(1, 64),
        nb=st.sampled_from([1, 2, 4]),
    )
    def test_property_matches_matmul(self, rows, k, n, nb):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((rows, k)).astype(np.float32)
        w = rng.standard_normal((k, n)).astype(np.float32)
        opts = PimOptimizations(num_gwrite_buffers=nb)
        out = execute_gemv_machine(x, w, _gemv(rows, k, n), CFG, opts)
        np.testing.assert_allclose(out, x @ w, rtol=1e-2, atol=1e-2)

    def test_tile_outputs_are_disjoint_slices(self, rng):
        gemv = _gemv(4, 64, 32)
        x = rng.standard_normal((4, 64)).astype(np.float32)
        w = rng.standard_normal((64, 32)).astype(np.float32)
        tiles = tile_over_channels(gemv, 16, "comp")
        for tile in tiles[:3]:
            out = execute_tile_machine(tile, gemv, x, w, CFG, NEWTON_PLUS)
            expected = x[:, tile.k_start:tile.k_start + tile.k] @ \
                w[tile.k_start:tile.k_start + tile.k,
                  tile.col_start:tile.col_start + tile.n]
            np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-3)

    def test_descriptor_mismatch_rejected(self, rng):
        x = rng.standard_normal((4, 64)).astype(np.float32)
        w = rng.standard_normal((64, 32)).astype(np.float32)
        with pytest.raises(ValueError):
            execute_gemv_machine(x, w, _gemv(5, 64, 32), CFG, NEWTON_PLUS)


class TestConvThroughMachine:
    def test_conv_via_pim_machine(self, rng):
        """Full path: im2col -> tiles -> buffer/latch machine == conv."""
        b = GraphBuilder(seed=9)
        x_name = b.input("x", (1, 9, 9, 6))
        y = b.conv(x_name, cout=10, kernel=3, bias=False, name="c")
        b.output(y)
        g = b.build()
        node = g.node("c")
        x = rng.standard_normal((1, 9, 9, 6)).astype(np.float32)
        w = g.initializers[node.inputs[1]].astype(np.float32)
        direct = conv2d_nhwc(x, w, None, (1, 1), node.attr("pads"), 1)

        gemv = lower_conv(node, g)
        cols = im2col_matrix(x, (3, 3), (1, 1), node.attr("pads"))
        flat = execute_gemv_machine(cols, lowered_weight_matrix(w), gemv,
                                    CFG, NEWTON_PLUS_PLUS)
        np.testing.assert_allclose(flat.reshape(direct.shape), direct,
                                   rtol=1e-3, atol=1e-3)
