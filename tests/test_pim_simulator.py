"""Tests for the event-driven PIM simulator and its agreement with the
closed-form model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.generator import generate_trace
from repro.lowering.im2col import LoweredGemv
from repro.pim.commands import CmdKind, PimCommand
from repro.pim.config import (
    NEWTON_PLUS,
    NEWTON_PLUS_PLUS,
    PimConfig,
    PimOptimizations,
)
from repro.pim.cost import gemv_cost, partial_combine_cycles
from repro.pim.simulator import simulate_program, simulate_trace
from repro.pim.timing import command_cycles

CFG = PimConfig()


def _gemv(rows=32, k=128, n=64, strided=False):
    return LoweredGemv(rows=rows, k=k, n=n,
                       contiguous_k=16 if strided else k, strided=strided)


def _simulated_cycles(gemv, opts):
    """Event-simulated kernel cycles plus the partial-combine drain the
    device model charges (the combine runs outside the channel programs)."""
    trace = generate_trace(gemv, CFG, opts)
    return (simulate_trace(trace, CFG).cycles
            + partial_combine_cycles(gemv, CFG, opts))


class TestSimulatorPrimitives:
    def test_empty_program(self):
        assert simulate_program([], CFG).cycles == 0

    def test_serial_chain_sums(self):
        cmds = [
            PimCommand(CmdKind.GWRITE, bytes=64),
            PimCommand(CmdKind.G_ACT, deps=(0,)),
            PimCommand(CmdKind.COMP, ops=8, deps=(1,)),
            PimCommand(CmdKind.READRES, bytes=32, deps=(2,)),
        ]
        expected = sum(command_cycles(c, CFG) for c in cmds)
        assert simulate_program(cmds, CFG).cycles == expected

    def test_io_and_compute_overlap_without_deps(self):
        # A GWRITE and a G_ACT with no dependency run concurrently.
        cmds = [
            PimCommand(CmdKind.GWRITE, bytes=3200),
            PimCommand(CmdKind.G_ACT),
        ]
        gw = command_cycles(cmds[0], CFG)
        act = command_cycles(cmds[1], CFG)
        assert simulate_program(cmds, CFG).cycles == max(gw, act)

    def test_same_resource_serializes(self):
        cmds = [
            PimCommand(CmdKind.GWRITE, bytes=320),
            PimCommand(CmdKind.GWRITE, bytes=320),
        ]
        one = command_cycles(cmds[0], CFG)
        assert simulate_program(cmds, CFG).cycles == 2 * one

    def test_forward_dep_rejected(self):
        cmds = [PimCommand(CmdKind.COMP, ops=1, deps=(3,))]
        with pytest.raises(ValueError):
            simulate_program(cmds, CFG)


class TestTraceSimulation:
    def test_trace_is_max_of_channels(self):
        gemv = _gemv()
        trace = generate_trace(gemv, CFG, NEWTON_PLUS)
        result = simulate_trace(trace, CFG)
        assert result.cycles == max(result.per_channel_cycles.values())

    def test_command_counts_present(self):
        trace = generate_trace(_gemv(), CFG, NEWTON_PLUS)
        result = simulate_trace(trace, CFG)
        for kind in ("GWRITE", "G_ACT", "COMP", "READRES"):
            assert result.command_counts.get(kind, 0) >= 1


class TestClosedFormAgreement:
    """The analytical model must track the event simulator."""

    @pytest.mark.parametrize("rows,k,n", [
        (8, 128, 64), (64, 64, 16), (16, 2048, 128), (100, 192, 1152),
        (1, 4096, 4096), (500, 32, 96),
    ])
    def test_serial_mode_matches_closely(self, rows, k, n):
        gemv = _gemv(rows=rows, k=k, n=n)
        opts = NEWTON_PLUS
        analytic = gemv_cost(gemv, CFG, opts).cycles
        assert _simulated_cycles(gemv, opts) == pytest.approx(analytic, rel=0.02)

    @pytest.mark.parametrize("rows,k,n", [
        (8, 128, 64), (64, 64, 16), (16, 2048, 128), (100, 192, 1152),
    ])
    def test_hiding_mode_within_tolerance(self, rows, k, n):
        gemv = _gemv(rows=rows, k=k, n=n)
        opts = NEWTON_PLUS_PLUS
        analytic = gemv_cost(gemv, CFG, opts).cycles
        assert _simulated_cycles(gemv, opts) == pytest.approx(analytic, rel=0.15)

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 300),
        k=st.integers(16, 1024),
        n=st.integers(1, 256),
        strided=st.booleans(),
    )
    def test_property_agreement_serial(self, rows, k, n, strided):
        gemv = _gemv(rows=rows, k=k, n=n, strided=strided)
        analytic = gemv_cost(gemv, CFG, NEWTON_PLUS).cycles
        assert _simulated_cycles(gemv, NEWTON_PLUS) == \
            pytest.approx(analytic, rel=0.05)

    def test_hiding_never_slower_in_simulation(self):
        for rows, k, n in [(32, 128, 64), (128, 512, 32), (16, 64, 256)]:
            gemv = _gemv(rows=rows, k=k, n=n)
            serial = simulate_trace(
                generate_trace(gemv, CFG, PimOptimizations()), CFG).cycles
            hidden = simulate_trace(
                generate_trace(gemv, CFG, PimOptimizations(
                    gwrite_latency_hiding=True)), CFG).cycles
            assert hidden <= serial
