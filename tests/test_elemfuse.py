"""Pass-level suite for elementwise-group fusion.

``fuse_elementwise`` contracts maximal chains/DAGs of pure elementwise
ops into ``FusedElementwise`` super-nodes.  The contract checked here
is graph-structural (grouping, interface preservation, interior-tensor
removal, acyclicity, idempotence) plus *interpreted* byte identity:
executing the fused graph through the numpy reference must reproduce
the unfused graph bit for bit.  Compiled-executor identity lives in
``test_fused_executor.py``.
"""

import pytest

from repro.graph.builder import GraphBuilder
from repro.models import build_model, list_models
from repro.runtime.numerical import execute
from repro.runtime.verify import random_feeds
from repro.transform.elemfuse import _fuse_elementwise, fuse_elementwise
from repro.transform.passes import pass_info, run_pass

SMALL_MODELS = ("toy", "mobilenet-v2", "shufflenet-v2")


def _fused_nodes(graph):
    return [n for n in graph.nodes if n.op_type == "FusedElementwise"]


def _chain_graph():
    b = GraphBuilder("chain", seed=0)
    x = b.input("x", (1, 8, 8, 4))
    c = b.conv(x, cout=4, kernel=3, name="c1")
    y = b.batchnorm(c, name="bn")
    y = b.relu6(y, name="act")
    y = b.add(y, c, name="res")
    b.output(y)
    return b.build()


def _diamond_graph():
    b = GraphBuilder("diamond", seed=1)
    x = b.input("x", (1, 8, 8, 4))
    c = b.conv(x, cout=4, kernel=1, name="c1")
    r = b.relu(c, name="r")
    s = b.sigmoid(r, name="s")
    g = b.gelu(r, name="g")
    y = b.add(s, g, name="join")
    b.output(y)
    return b.build()


class TestGrouping:
    def test_chain_contracts_to_one_node(self):
        graph = _chain_graph()
        fused = _fuse_elementwise(graph)
        fused.validate()
        groups = _fused_nodes(fused)
        assert len(groups) == 1
        # BN + Relu6(Clip) + Add all join; the conv stays out.
        assert len(groups[0].attr("expr")) == 3
        assert len(fused.nodes) == len(graph.nodes) - 2

    def test_diamond_contracts_to_one_node(self):
        fused = _fuse_elementwise(_diamond_graph())
        fused.validate()
        groups = _fused_nodes(fused)
        assert len(groups) == 1
        assert len(groups[0].attr("expr")) == 4  # relu, sigmoid, gelu, add

    def test_interior_tensors_removed(self):
        graph = _chain_graph()
        fused = _fuse_elementwise(graph)
        # bn and act results are interior to the group: no consumer
        # outside it, so the planner must never see them.
        interior = {n.outputs[0] for n in graph.nodes
                    if n.name in ("bn", "act")}
        assert interior
        for t in interior:
            assert t not in fused.tensors

    def test_interface_preserved(self):
        graph = _chain_graph()
        fused = _fuse_elementwise(graph)
        assert fused.inputs == graph.inputs
        assert fused.outputs == graph.outputs
        for t in graph.outputs:
            assert fused.tensors[t].shape == graph.tensors[t].shape

    def test_cycle_inducing_merge_rejected(self):
        # relu feeds both a conv and an add; add also consumes the conv
        # result.  Fusing {relu, add} would make the contracted node
        # both a producer and a consumer of the conv — a cycle.  The
        # reachability guard must leave them unfused.
        b = GraphBuilder("cyc", seed=2)
        x = b.input("x", (1, 8, 8, 4))
        a = b.relu(x, name="r")
        c = b.conv(a, cout=4, kernel=1, name="mid")
        y = b.add(a, c, name="join")
        b.output(y)
        graph = b.build()
        fused = _fuse_elementwise(graph)
        fused.validate()
        assert not _fused_nodes(fused)
        assert len(fused.nodes) == len(graph.nodes)

    def test_single_elementwise_not_fused(self):
        b = GraphBuilder("one", seed=3)
        x = b.input("x", (1, 8, 8, 4))
        y = b.relu(b.conv(x, cout=4, kernel=1), name="r")
        b.output(y)
        fused = _fuse_elementwise(b.build())
        assert not _fused_nodes(fused)

    def test_idempotent(self):
        fused = _fuse_elementwise(_chain_graph())
        again = _fuse_elementwise(fused)
        assert len(again.nodes) == len(fused.nodes)
        assert len(_fused_nodes(again)) == len(_fused_nodes(fused))

    def test_expr_is_json_serializable(self):
        import json

        fused = _fuse_elementwise(_chain_graph())
        node = _fused_nodes(fused)[0]
        payload = json.dumps({"expr": node.attr("expr"),
                              "out_ids": node.attr("out_ids")})
        assert json.loads(payload)["out_ids"] == node.attr("out_ids")


class TestPassRegistry:
    def test_registered(self):
        info = pass_info("fuse_elementwise")
        assert info.idempotent
        assert "fusion" in info.tags

    def test_run_pass_does_not_mutate_input(self):
        graph = _chain_graph()
        before = len(graph.nodes)
        fused = run_pass("fuse_elementwise", graph)
        assert len(graph.nodes) == before
        assert fused is not graph
        assert _fused_nodes(fused)

    def test_wrapper_matches_raw_pass(self):
        graph = _chain_graph()
        a = fuse_elementwise(graph)
        b = _fuse_elementwise(graph)
        assert len(a.nodes) == len(b.nodes)


class TestInterpretedByteIdentity:
    @pytest.mark.parametrize("model", list_models())
    def test_registry_batch1(self, model):
        graph = build_model(model)
        fused = _fuse_elementwise(graph)
        feeds = random_feeds(graph, seed=0)
        ref = execute(graph, feeds)
        out = execute(fused, feeds)
        assert set(out) == set(ref)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes(), \
                f"{model}:{name} drifts under interpreted fusion"

    @pytest.mark.parametrize("model", SMALL_MODELS)
    def test_registry_batch8(self, model):
        graph = build_model(model)
        fused = _fuse_elementwise(graph)
        feeds = random_feeds(graph, seed=0, batch=8)
        ref = execute(graph, feeds)
        out = execute(fused, feeds)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()

    def test_diamond_identity(self):
        graph = _diamond_graph()
        fused = _fuse_elementwise(graph)
        feeds = random_feeds(graph, seed=4)
        ref = execute(graph, feeds)
        out = execute(fused, feeds)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()

    def test_group_output_also_consumed_outside(self):
        # The relu result is consumed by the group *and* by a conv
        # outside it, so it must survive as a fused output.
        b = GraphBuilder("esc", seed=5)
        x = b.input("x", (1, 8, 8, 4))
        r = b.relu(x, name="r")
        s = b.sigmoid(r, name="s")
        b.output(b.conv(r, cout=4, kernel=1, name="tail"))
        b.output(s)
        graph = b.build()
        fused = _fuse_elementwise(graph)
        fused.validate()
        node = _fused_nodes(fused)[0]
        assert len(node.outputs) == 2
        feeds = random_feeds(graph, seed=5)
        ref = execute(graph, feeds)
        out = execute(fused, feeds)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()
