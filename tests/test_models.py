"""Tests for the model zoo."""

import numpy as np
import pytest

from repro.graph.ops import is_pim_candidate
from repro.models import build_model, list_models
from repro.models.efficientnet import EFFICIENTNET_PARAMS
from repro.runtime.numerical import execute


def _candidate_convs(graph):
    out = []
    for n in graph.nodes:
        if n.op_type != "Conv":
            continue
        shapes = [graph.tensors[t].shape for t in n.inputs]
        if is_pim_candidate(n, shapes):
            out.append(n)
    return out


class TestRegistry:
    def test_lists_evaluated_models(self):
        names = list_models()
        for required in ("efficientnet-v1-b0", "mobilenet-v2", "mnasnet-1.0",
                         "resnet-50", "vgg-16", "toy"):
            assert required in names

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_alias_normalization(self):
        canonical = build_model("mobilenet-v2")
        for alias in ("mobilenet_v2", "MobileNet-V2", " mobilenet-v2 ",
                      "MOBILENET_V2"):
            assert build_model(alias).name == canonical.name

    def test_unknown_model_suggests_close_match(self):
        with pytest.raises(KeyError, match="did you mean.*mobilenet-v2"):
            build_model("mobilnet-v2")


class TestStructure:
    @pytest.mark.parametrize("name", ["toy", "mobilenet-v2", "mnasnet-1.0",
                                      "efficientnet-v1-b0"])
    def test_graphs_validate(self, name):
        build_model(name).validate()

    def test_resnet50_conv_count(self):
        g = build_model("resnet-50")
        # 1 stem + 16 blocks x 3 convs + 4 downsample convs = 53.
        assert g.op_counts()["Conv"] == 53
        assert g.op_counts()["Gemm"] == 1

    def test_vgg16_structure(self):
        g = build_model("vgg-16")
        assert g.op_counts()["Conv"] == 13
        assert g.op_counts()["Gemm"] == 3
        assert g.op_counts()["MaxPool"] == 5

    def test_mobilenet_has_17_dw_convs(self):
        g = build_model("mobilenet-v2")
        dw = [n for n in g.nodes if n.op_type == "Conv"
              and int(n.attr("group", 1)) > 1]
        assert len(dw) == 17  # one per inverted residual block

    def test_mobilenet_output_shape(self):
        g = build_model("mobilenet-v2")
        assert g.tensors[g.outputs[0]].shape == (1, 1000)

    def test_efficientnet_scaling_grows(self):
        flops = {}
        for variant in ("b0", "b2"):
            g = build_model(f"efficientnet-v1-{variant}")
            from repro.gpu.kernels import node_flops_bytes
            flops[variant] = sum(node_flops_bytes(n, g)[0] for n in g.nodes)
        assert flops["b2"] > 1.5 * flops["b0"]

    def test_efficientnet_resolution_scales(self):
        for variant, (_, _, res) in EFFICIENTNET_PARAMS.items():
            if variant in ("b0", "b3"):
                g = build_model(f"efficientnet-v1-{variant}")
                assert g.tensors["input"].shape[1] == res

    def test_bert_fc_counts(self):
        g = build_model("bert-seq64")
        # 12 layers x 6 Gemms (q, k, v, attn_out, ff1, ff2) + classifier.
        assert g.op_counts()["Gemm"] == 12 * 6 + 1
        assert g.tensors["input"].shape == (64, 768)

    def test_all_evaluated_models_have_pim_candidates(self):
        for name in ("mobilenet-v2", "mnasnet-1.0", "efficientnet-v1-b0",
                     "resnet-50", "vgg-16"):
            assert len(_candidate_convs(build_model(name))) >= 10


class TestNumericalExecution:
    def test_toy_runs(self, rng):
        g = build_model("toy")
        out = execute(g, {"input": rng.standard_normal((1, 56, 56, 3)) * 0.1})
        (result,) = out.values()
        assert result.shape == (1, 10)
        assert np.isfinite(result).all()

    def test_mobilenet_runs_finite(self, rng):
        g = build_model("mobilenet-v2")
        out = execute(g, {"input": rng.standard_normal((1, 224, 224, 3)) * 0.1})
        (result,) = out.values()
        assert result.shape == (1, 1000)
        assert np.isfinite(result).all()

    def test_deterministic_weights(self):
        g1 = build_model("toy")
        g2 = build_model("toy")
        for name in g1.initializers:
            np.testing.assert_array_equal(g1.initializers[name],
                                          g2.initializers[name])
