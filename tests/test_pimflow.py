"""Tests for the top-level PIMFlow toolchain."""

import numpy as np
import pytest

from repro.models import build_model
from repro.pimflow import MECHANISMS, PimFlow, PimFlowConfig, run_mechanism
from repro.runtime.numerical import execute


@pytest.fixture(scope="module")
def toy():
    return build_model("toy")


@pytest.fixture(scope="module")
def results(toy):
    out = {}
    for mech in MECHANISMS:
        out[mech] = PimFlow(PimFlowConfig(mechanism=mech)).run(toy)
    return out


class TestConfig:
    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            PimFlowConfig(mechanism="quantum")

    def test_mechanism_specs(self):
        assert not MECHANISMS["gpu"].uses_pim
        assert MECHANISMS["newton+"].split_ratios == (0.0, 1.0)
        assert len(MECHANISMS["pimflow-md"].split_ratios) == 11
        assert MECHANISMS["pimflow"].pipelines
        assert not MECHANISMS["pimflow-md"].pipelines

    def test_ratio_step_override(self):
        cfg = PimFlowConfig(mechanism="pimflow-md", ratio_step=0.02)
        assert len(cfg.spec.split_ratios) == 51

    def test_channel_split_applied(self):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        assert flow.gpu.config.mem_channels == 16
        assert flow.pim.config.num_channels == 16

    def test_gpu_baseline_gets_all_channels(self):
        flow = PimFlow(PimFlowConfig(mechanism="gpu"))
        assert flow.gpu.config.mem_channels == 32
        assert flow.pim is None
        assert not flow.gpu.write_through

    def test_pim_modes_use_write_through(self):
        flow = PimFlow(PimFlowConfig(mechanism="newton++"))
        assert flow.gpu.write_through


class TestWorkflow:
    def test_profile_covers_every_node(self, toy):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        g = flow.prepare(toy)
        table = flow.profile(g)
        for node in g.nodes:
            assert table.best(node.name, 1) is not None

    def test_profile_has_eleven_ratio_samples(self, toy):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow-md"))
        g = flow.prepare(toy)
        table = flow.profile(g)
        conv = next(n for n in g.nodes if n.op_type == "Conv"
                    and int(n.attr("group", 1)) == 1)
        options = table.options(conv.name, 1)
        assert len(options) == 11

    def test_compile_with_cached_table(self, toy):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        first = flow.compile(toy)
        second = flow.compile(toy, table=first.table)
        assert second.predicted_time_us == pytest.approx(
            first.predicted_time_us)
        assert [d.mode for d in second.decisions] == \
            [d.mode for d in first.decisions]

    def test_compiled_graph_validates(self, toy):
        compiled = PimFlow(PimFlowConfig(mechanism="pimflow")).compile(toy)
        compiled.graph.validate()

    def test_compiled_graph_semantics_preserved(self, toy, rng):
        """The transformed graph must compute what the model computes."""
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        compiled = flow.compile(toy)
        feed = {"input": rng.standard_normal((1, 56, 56, 3)) * 0.1}
        ref = execute(toy, feed)
        out = execute(compiled.graph, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=5e-3, atol=5e-3)


class TestMechanismOrdering:
    """Paper Fig. 9 orderings, on the toy network."""

    def test_newton_pp_not_slower_than_newton_plus(self, results):
        assert results["newton++"].makespan_us <= \
            results["newton+"].makespan_us * 1.001

    def test_pimflow_md_not_slower_than_newton_pp(self, results):
        assert results["pimflow-md"].makespan_us <= \
            results["newton++"].makespan_us * 1.001

    def test_pimflow_best_overall(self, results):
        best_others = min(r.makespan_us for m, r in results.items()
                          if m != "pimflow")
        assert results["pimflow"].makespan_us <= best_others * 1.001

    def test_pim_mechanisms_use_pim(self, results):
        for mech in ("newton+", "newton++", "pimflow-md", "pimflow"):
            assert results[mech].pim_busy_us > 0, mech

    def test_run_mechanism_helper(self, toy, results):
        res = run_mechanism(toy, "gpu")
        assert res.makespan_us == pytest.approx(results["gpu"].makespan_us)


class TestStageOptionSearch:
    """Extension: the search may consider multiple stage counts."""

    def test_multiple_stage_options_never_worse(self, toy):
        base = PimFlow(PimFlowConfig(mechanism="pimflow")).compile(toy)
        multi = PimFlow(PimFlowConfig(
            mechanism="pimflow",
            pipeline_stage_options=(3, 4))).compile(toy)
        assert multi.predicted_time_us <= base.predicted_time_us + 1e-6

    def test_stage_options_recorded_in_table(self, toy):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow",
                                     pipeline_stage_options=(3,)))
        g = flow.prepare(toy)
        table = flow.profile(g)
        stages = {m.stages for m in table.all_measurements()
                  if m.mode == "pipeline"}
        assert {2, 3} <= stages

    def test_chosen_pipeline_stage_applies(self, toy):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow",
                                     pipeline_stage_options=(3,)))
        compiled = flow.compile(toy)
        compiled.graph.validate()
        for d in compiled.decisions:
            if d.mode == "pipeline":
                assert d.stages in (2, 3)
