"""Property tests for the vectorized executor fast paths.

Every conv dispatch branch (depthwise, grouped einsum, pointwise GEMM,
im2col, per-tap fallback) must match the naive per-group loop kept in
:func:`repro.runtime.numerical.conv2d_nhwc_reference` within float32
tolerance, and the batched-feed / multi-output ``execute`` semantics
must hold on real graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.runtime.numerical as numerical
from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.tensor import TensorInfo
from repro.models import build_model
from repro.runtime.numerical import (
    KERNELS,
    conv2d_nhwc,
    conv2d_nhwc_reference,
    execute,
)


def _case(n, h, w, cin, cout, kh, kw, sh, sw, pads, group, bias=True,
          seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, h, w, cin)).astype(np.float32)
    wt = rng.standard_normal((kh, kw, cin // group, cout)).astype(np.float32)
    b = rng.standard_normal((cout,)).astype(np.float32) if bias else None
    return x, wt, b, (sh, sw), pads, group


def _assert_matches_reference(x, wt, b, strides, pads, group):
    got = conv2d_nhwc(x, wt, b, strides, pads, group)
    want = conv2d_nhwc_reference(x, wt, b, strides, pads, group)
    assert got.shape == want.shape
    np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)


class TestConvPathsMatchReference:
    @pytest.mark.parametrize("case", [
        # regular 3x3, padded
        _case(2, 8, 8, 5, 7, 3, 3, 1, 1, (1, 1, 1, 1), 1),
        # pointwise, strided
        _case(1, 9, 9, 6, 4, 1, 1, 2, 2, (0, 0, 0, 0), 1),
        # depthwise 3x3, strided + padded
        _case(2, 10, 10, 8, 8, 3, 3, 2, 2, (1, 1, 1, 1), 8),
        # grouped, cout_g=3
        _case(1, 7, 7, 8, 12, 3, 3, 1, 1, (1, 1, 1, 1), 4),
        # grouped, cout_g=1 (cout == group but cin_g > 1: NOT depthwise)
        _case(1, 6, 6, 8, 4, 3, 3, 1, 1, (0, 0, 0, 0), 4),
        # asymmetric strides and pads
        _case(1, 11, 9, 6, 9, 5, 3, 2, 1, (2, 0, 1, 1), 3),
        # no bias
        _case(1, 5, 5, 4, 4, 3, 3, 1, 1, (1, 1, 1, 1), 1, bias=False),
    ])
    def test_explicit_cases(self, case):
        _assert_matches_reference(*case)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 2),
        hw=st.integers(4, 9),
        cin_g=st.integers(1, 3),
        group=st.integers(1, 4),
        cout_g=st.integers(1, 3),
        kh=st.integers(1, 3),
        kw=st.integers(1, 3),
        sh=st.integers(1, 2),
        sw=st.integers(1, 2),
        pad=st.integers(0, 2),
        seed=st.integers(0, 10),
    )
    def test_random_geometries(self, n, hw, cin_g, group, cout_g, kh, kw,
                               sh, sw, pad, seed):
        case = _case(n, hw, hw, cin_g * group, cout_g * group, kh, kw,
                     sh, sw, (pad, pad, pad, pad), group, seed=seed)
        _assert_matches_reference(*case)

    def test_im2col_fallback_matches(self, monkeypatch):
        # Force the per-tap accumulation branch for a conv that would
        # normally take the im2col path.
        monkeypatch.setattr(numerical, "IM2COL_MAX_ELEMENTS", 1)
        _assert_matches_reference(
            *_case(1, 8, 8, 5, 7, 3, 3, 1, 1, (1, 1, 1, 1), 1))

    def test_group_must_divide_channels(self):
        x, wt, b, strides, pads, _ = _case(1, 6, 6, 4, 4, 3, 3, 1, 1,
                                           (0, 0, 0, 0), 1)
        with pytest.raises(ValueError, match="group=3 must divide"):
            conv2d_nhwc(x, wt, b, strides, pads, 3)
        with pytest.raises(ValueError, match="group=3 must divide"):
            conv2d_nhwc_reference(x, wt, b, strides, pads, 3)

    def test_inconsistent_weight_shape_rejected(self):
        x = np.zeros((1, 6, 6, 8), dtype=np.float32)
        wt = np.zeros((3, 3, 4, 8), dtype=np.float32)  # cin_g=4, group=4
        with pytest.raises(ValueError, match="inconsistent"):
            conv2d_nhwc(x, wt, None, (1, 1), (0, 0, 0, 0), 4)


class TestBatchedExecute:
    @pytest.mark.parametrize("model", ["toy", "shufflenet-v2"])
    def test_batched_feed_equals_stacked_singles(self, model):
        graph = build_model(model)
        rng = np.random.default_rng(7)
        (name,) = graph.inputs
        shape = graph.tensors[name].shape
        batch = 3
        feed = (rng.standard_normal((batch,) + tuple(shape[1:])) * 0.1
                ).astype(np.float32)
        batched = execute(graph, {name: feed})
        for i in range(batch):
            single = execute(graph, {name: feed[i:i + 1]})
            for out in graph.outputs:
                np.testing.assert_allclose(batched[out][i:i + 1],
                                           single[out],
                                           rtol=1e-3, atol=1e-3)


class TestMultiOutputExecute:
    @pytest.fixture()
    def split_kernel(self):
        def _split(node, inputs):
            x = inputs[0]
            half = x.shape[-1] // 2
            return x[..., :half], x[..., half:]

        KERNELS["SplitHalf"] = _split
        yield
        del KERNELS["SplitHalf"]

    def _graph(self):
        g = Graph("multi")
        g.add_tensor(TensorInfo("x", (2, 4), "float32"))
        for t in ("lo", "hi", "y"):
            g.add_tensor(TensorInfo(t, (2, 2), "float32"))
        g.add_node(Node("split", "SplitHalf", ["x"], ["lo", "hi"]))
        g.add_node(Node("add", "Add", ["lo", "hi"], ["y"]))
        g.inputs.append("x")
        g.outputs.extend(["y", "hi"])
        g.touch()
        return g

    def test_all_node_outputs_stored(self, split_kernel):
        g = self._graph()
        x = np.arange(8, dtype=np.float32).reshape(2, 4)
        out = execute(g, {"x": x})
        np.testing.assert_array_equal(out["hi"], x[:, 2:])
        np.testing.assert_array_equal(out["y"], x[:, :2] + x[:, 2:])

    def test_output_count_mismatch_is_an_error(self, split_kernel):
        g = self._graph()
        KERNELS["SplitHalf"] = lambda node, inputs: inputs[0]
        with pytest.raises(ValueError, match="one array for 2 outputs"):
            execute(g, {"x": np.zeros((2, 4), dtype=np.float32)})
