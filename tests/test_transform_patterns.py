"""Tests for pipelining pattern detection."""

from repro.graph.builder import GraphBuilder
from repro.models import build_model
from repro.transform.patterns import find_pipeline_candidates


def _inverted_residual_graph():
    b = GraphBuilder(seed=4)
    x = b.input("x", (1, 14, 14, 8))
    y = b.conv(x, cout=32, kernel=1, name="expand")
    y = b.relu6(y, name="a1")
    y = b.dwconv(y, kernel=3, name="dw")
    y = b.relu6(y, name="a2")
    y = b.conv(y, cout=8, kernel=1, name="project")
    y = b.relu(y, name="a3")
    b.output(y)
    return b.build()


class TestPatternDetection:
    def test_finds_all_three_types(self):
        g = _inverted_residual_graph()
        kinds = {p.kind for p in find_pipeline_candidates(g)}
        assert kinds == {"1x1-dw", "dw-1x1", "1x1-dw-1x1"}

    def test_chain_contents(self):
        g = _inverted_residual_graph()
        by_kind = {p.kind: p for p in find_pipeline_candidates(g)}
        assert by_kind["1x1-dw"].chain == ("expand", "a1", "dw")
        assert by_kind["dw-1x1"].chain == ("dw", "a2", "project")
        assert by_kind["1x1-dw-1x1"].chain == (
            "expand", "a1", "dw", "a2", "project")
        assert by_kind["1x1-dw-1x1"].convs == ("expand", "dw", "project")

    def test_branching_breaks_chain(self):
        b = GraphBuilder(seed=5)
        x = b.input("x", (1, 14, 14, 8))
        y = b.conv(x, cout=16, kernel=1, name="pw")
        z = b.dwconv(y, kernel=3, name="dw")
        w = b.relu(y)  # second consumer of pw's output
        b.output(b.add(z, w))
        g = b.build()
        assert find_pipeline_candidates(g) == []

    def test_regular_convs_do_not_match(self):
        b = GraphBuilder(seed=6)
        x = b.input("x", (1, 14, 14, 8))
        y = b.conv(x, cout=16, kernel=3, name="c1")
        y = b.relu(y)
        y = b.conv(y, cout=16, kernel=3, name="c2")
        b.output(y)
        g = b.build()
        assert find_pipeline_candidates(g) == []

    def test_graph_output_ends_chain(self):
        b = GraphBuilder(seed=7)
        x = b.input("x", (1, 14, 14, 8))
        y = b.conv(x, cout=16, kernel=1, name="pw")
        b.output(y)  # pw output is a graph output; no chain beyond it
        z = b.dwconv(y, kernel=3, name="dw")
        b.output(z)
        g = b.build()
        assert find_pipeline_candidates(g) == []


class TestModelPatterns:
    def test_mobilenet_has_many_patterns(self):
        g = build_model("mobilenet-v2")
        patterns = find_pipeline_candidates(g)
        kinds = {p.kind for p in patterns}
        # Every inverted residual contributes 1x1-DW / DW-1x1 pairs and
        # the full sandwich.
        assert {"1x1-dw", "dw-1x1", "1x1-dw-1x1"} <= kinds
        assert len(patterns) >= 30

    def test_resnet_has_no_patterns(self):
        # ResNet50 has no depthwise convolutions (paper: "a few to zero
        # pipelining pattern matches" for ResNet50/VGG16).
        g = build_model("resnet-50")
        assert find_pipeline_candidates(g) == []

    def test_vgg_has_no_patterns(self):
        g = build_model("vgg-16")
        assert find_pipeline_candidates(g) == []
