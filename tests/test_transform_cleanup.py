"""Tests for dead-code elimination and constant folding."""

import numpy as np
from repro.graph.builder import GraphBuilder
from repro.runtime.numerical import execute
from repro.transform.cleanup import cleanup, eliminate_dead_nodes, fold_constants


class TestDeadCodeElimination:
    def test_removes_unused_chain(self):
        b = GraphBuilder(seed=1)
        x = b.input("x", (1, 8))
        live = b.gemm(x, 4, name="live")
        dead = b.gemm(x, 4, name="dead")
        b.relu(dead, name="dead_relu")
        b.output(live)
        g = eliminate_dead_nodes(b.build())
        names = {n.name for n in g.nodes}
        assert names == {"live"}

    def test_keeps_graph_outputs(self):
        b = GraphBuilder(seed=2)
        x = b.input("x", (1, 8))
        y = b.gemm(x, 4, name="g")
        b.output(y)
        g = eliminate_dead_nodes(b.build())
        assert len(g) == 1

    def test_semantics_preserved(self, rng):
        b = GraphBuilder(seed=3)
        x = b.input("x", (1, 8))
        y = b.gemm(x, 4, name="g")
        b.sigmoid(y, name="unused")
        b.output(y)
        g = b.build()
        feed = {"x": rng.standard_normal((1, 8))}
        ref = execute(g, feed)
        out = execute(eliminate_dead_nodes(g), feed)
        for k in ref:
            np.testing.assert_array_equal(ref[k], out[k])

    def test_pure_pass(self, small_conv_graph):
        n = len(small_conv_graph)
        eliminate_dead_nodes(small_conv_graph)
        assert len(small_conv_graph) == n


class TestConstantFolding:
    def _const_chain_graph(self):
        b = GraphBuilder(seed=4)
        x = b.input("x", (1, 4))
        b.graph.add_initializer("cw", np.ones((1, 4), dtype=np.float32))
        folded = b._emit("Relu", ["cw"], None, "const_relu")
        y = b.add(x, folded, name="combine")
        b.output(y)
        return b.build()

    def test_folds_constant_node(self):
        g = fold_constants(self._const_chain_graph())
        assert all(n.name != "const_relu" for n in g.nodes)
        assert "const_relu_out" in g.initializers

    def test_semantics_preserved(self, rng):
        g = self._const_chain_graph()
        feed = {"x": rng.standard_normal((1, 4))}
        ref = execute(g, feed)
        out = execute(fold_constants(g), feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], atol=1e-6)

    def test_does_not_fold_graph_outputs(self):
        b = GraphBuilder(seed=5)
        b.input("x", (1, 4))  # unused but keeps the graph non-degenerate
        b.graph.add_initializer("cw", np.ones((2, 2), dtype=np.float32))
        out = b._emit("Relu", ["cw"], None, "r")
        b.output(out)
        g = fold_constants(b.build())
        assert any(n.name == "r" for n in g.nodes)

    def test_cascading_folds(self):
        b = GraphBuilder(seed=6)
        x = b.input("x", (1, 4))
        b.graph.add_initializer("cw", np.full((1, 4), -2.0, dtype=np.float32))
        a = b._emit("Relu", ["cw"], None, "f1")
        c = b._emit("Sigmoid", [a], None, "f2")
        b.output(b.add(x, c, name="combine"))
        g = fold_constants(b.build())
        assert len(g) == 1  # only the Add survives

    def test_cleanup_composes(self, rng):
        g = self._const_chain_graph()
        out = cleanup(g)
        out.validate()
        feed = {"x": rng.standard_normal((1, 4))}
        ref = execute(g, feed)
        res = execute(out, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], res[k], atol=1e-6)
