"""Tests for batch-scaled device pricing of compiled plans."""

import threading

import pytest

from repro.models import build_model
from repro.pimflow import Compiler, PimFlowConfig
from repro.runtime.executor import PlanExecutor
from repro.serve.pricing import BatchCostModel, batch_scaled_graph


class TestBatchScaledGraph:
    def test_scales_activations_not_initializers(self, toy_plan):
        g = toy_plan.graph
        scaled = batch_scaled_graph(g, 8)
        for name, info in scaled.tensors.items():
            original = g.tensors[name].shape
            if name in g.initializers:
                assert info.shape == original
            elif len(original) >= 2 and original[0] == 1:
                assert info.shape == (8,) + tuple(original[1:])

    def test_original_graph_untouched(self, toy_plan):
        g = toy_plan.graph
        before = {n: tuple(t.shape) for n, t in g.tensors.items()}
        version = g.version
        batch_scaled_graph(g, 4)
        assert {n: tuple(t.shape) for n, t in g.tensors.items()} == before
        assert g.version == version

    def test_scaled_graph_validates(self, toy_plan):
        batch_scaled_graph(toy_plan.graph, 8).validate()

    def test_batch1_is_identity_clone(self, toy_plan):
        scaled = batch_scaled_graph(toy_plan.graph, 1)
        assert {n: tuple(t.shape) for n, t in scaled.tensors.items()} == {
            n: tuple(t.shape) for n, t in toy_plan.graph.tensors.items()}

    def test_invalid_batch_rejected(self, toy_plan):
        with pytest.raises(ValueError):
            batch_scaled_graph(toy_plan.graph, 0)


class TestBatchCostModel:
    @staticmethod
    def _net(batch):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder("net", seed=9)
        x = b.input("x", (batch, 28, 28, 8))
        y = b.conv(x, cout=16, kernel=3, name="c0")
        y = b.relu(y, name="r0")
        y = b.conv(y, cout=16, kernel=1, name="c1")
        b.output(y)
        return b.build()

    def test_scaled_graph_prices_like_natively_built_batch(self):
        """The batch-scaled graph is a faithful batch-B view: it prices
        exactly like the same model *built* at batch B."""
        from repro.pimflow import PimFlow

        engine = PimFlow(PimFlowConfig(mechanism="gpu")).engine
        scaled = engine.run(batch_scaled_graph(self._net(1), 8))
        native = engine.run(self._net(8))
        assert scaled.makespan_us == pytest.approx(native.makespan_us,
                                                   rel=1e-12)

    def test_memoized_per_version_and_batch(self, toy_plan):
        executor = PlanExecutor(toy_plan)
        cost = BatchCostModel(executor.engine, toy_plan.graph)
        before = executor.engine.run_count
        a = cost.run_result(4)
        b = cost.run_result(4)
        assert a is b
        assert executor.engine.run_count == before + 1

    def test_throughput_monotonic_quantities(self, toy_plan):
        executor = PlanExecutor(toy_plan)
        cost = BatchCostModel(executor.engine, toy_plan.graph)
        # Makespan grows with batch; per-sample time shrinks or holds.
        assert cost.batch_makespan_us(8) > cost.batch_makespan_us(1)
        assert cost.per_sample_us(8) <= cost.per_sample_us(1)
        assert cost.batching_win(1) == pytest.approx(1.0)
        profile = cost.profile((1, 2, 8))
        assert set(profile) == {1, 2, 8}
        assert profile[8]["win_vs_batch1"] == cost.batching_win(8)

    def test_concurrent_pricing_is_consistent(self, toy_plan):
        executor = PlanExecutor(toy_plan)
        cost = BatchCostModel(executor.engine, toy_plan.graph)
        results = []
        lock = threading.Lock()

        def worker():
            for b in (1, 2, 4, 8):
                r = cost.batch_makespan_us(b)
                with lock:
                    results.append((b, r))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_batch = {}
        for b, r in results:
            by_batch.setdefault(b, set()).add(r)
        # Deterministic pricing: every thread saw the same number.
        assert all(len(v) == 1 for v in by_batch.values())


class TestAcceptanceWin:
    def test_mobilenet_gpu_batching_win_at_least_2x(self):
        """Acceptance: >=2x modelled throughput at max-batch 8 on
        mobilenet-v2 (GPU baseline plan, where batching recovers SIMT
        utilization)."""
        config = PimFlowConfig(mechanism="gpu")
        plan = Compiler(config).build_plan(build_model("mobilenet-v2"),
                                           model_name="mobilenet-v2")
        executor = PlanExecutor(plan)
        cost = BatchCostModel(executor.engine, plan.graph)
        assert cost.batching_win(8) >= 2.0

    def test_pimflow_plan_is_batch1_design_point(self, toy_plan):
        """The PIM-offloaded plan batches too, but with a smaller win —
        PIM bandwidth is already saturated at batch 1 (paper Fig. 8)."""
        executor = PlanExecutor(toy_plan)
        cost = BatchCostModel(executor.engine, toy_plan.graph)
        win = cost.batching_win(8)
        assert win >= 1.0  # batching never hurts modelled throughput
