"""Tests for the closed-form PIM cost model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowering.im2col import LoweredGemv
from repro.lowering.tiling import tile_over_channels
from repro.pim.config import (
    NEWTON,
    NEWTON_PLUS,
    NEWTON_PLUS_PLUS,
    PimConfig,
    PimOptimizations,
)
from repro.pim.cost import buffer_k_tiles, gemv_cost, tile_cost


def _gemv(rows=64, k=128, n=64, strided=False, contiguous_k=None):
    return LoweredGemv(rows=rows, k=k, n=n,
                       contiguous_k=contiguous_k or (8 if strided else k),
                       strided=strided)


CFG = PimConfig()


class TestBufferKTiles:
    def test_short_vector_single_pass(self):
        assert buffer_k_tiles(32, CFG) == 1

    def test_exact_fit(self):
        assert buffer_k_tiles(CFG.buffer_capacity_elems, CFG) == 1

    def test_long_vectors_tile(self):
        assert buffer_k_tiles(3 * CFG.buffer_capacity_elems + 5, CFG) == 4


class TestOptimizationEffects:
    def test_latency_hiding_helps(self):
        base = PimOptimizations(num_gwrite_buffers=1, gwrite_latency_hiding=False)
        hide = PimOptimizations(num_gwrite_buffers=1, gwrite_latency_hiding=True)
        gemv = _gemv(rows=512, k=1024, n=64)
        assert gemv_cost(gemv, CFG, hide).cycles < gemv_cost(gemv, CFG, base).cycles

    def test_multi_buffer_reduces_activations(self):
        # Multi-row filter sets re-activate per group; 4 buffers divide
        # the group count by 4.
        gemv = _gemv(rows=256, k=2048, n=512)
        one = gemv_cost(gemv, CFG, PimOptimizations(num_gwrite_buffers=1))
        four = gemv_cost(gemv, CFG, PimOptimizations(num_gwrite_buffers=4))
        assert four.activations < one.activations
        assert four.cycles < one.cycles

    def test_strided_gwrite_helps_strided_layers(self):
        gemv = _gemv(rows=128, k=576, n=64, strided=True, contiguous_k=64)
        base = PimOptimizations(strided_gwrite=False)
        ext = PimOptimizations(strided_gwrite=True)
        assert gemv_cost(gemv, CFG, ext).cycles < gemv_cost(gemv, CFG, base).cycles

    def test_strided_gwrite_noop_for_pointwise(self):
        gemv = _gemv(strided=False)
        base = PimOptimizations(strided_gwrite=False)
        ext = PimOptimizations(strided_gwrite=True)
        assert gemv_cost(gemv, CFG, ext).cycles == gemv_cost(gemv, CFG, base).cycles

    def test_newton_ordering(self):
        """Newton <= Newton+ <= Newton++ in speed (paper Fig. 9/14)."""
        gemv = _gemv(rows=196, k=192, n=80)
        t_newton = gemv_cost(gemv, CFG, NEWTON).cycles
        t_plus = gemv_cost(gemv, CFG, NEWTON_PLUS).cycles
        t_pp = gemv_cost(gemv, CFG, NEWTON_PLUS_PLUS).cycles
        assert t_pp < t_plus <= t_newton

    def test_optimizations_compose(self):
        """Fig. 14: each opt helps alone; both help more."""
        gemv = _gemv(rows=512, k=2048, n=256)
        base = gemv_cost(gemv, CFG, PimOptimizations()).cycles
        hide = gemv_cost(gemv, CFG, PimOptimizations(
            gwrite_latency_hiding=True)).cycles
        multi = gemv_cost(gemv, CFG, PimOptimizations(
            num_gwrite_buffers=4)).cycles
        both = gemv_cost(gemv, CFG, PimOptimizations(
            num_gwrite_buffers=4, gwrite_latency_hiding=True)).cycles
        assert hide < base
        assert multi < base
        assert both <= min(hide, multi)


class TestScaling:
    def test_more_channels_not_slower(self):
        gemv = _gemv(rows=256, k=512, n=256)
        t8 = gemv_cost(gemv, CFG.with_channels(8), NEWTON_PLUS_PLUS).cycles
        t16 = gemv_cost(gemv, CFG.with_channels(16), NEWTON_PLUS_PLUS).cycles
        t32 = gemv_cost(gemv, CFG.with_channels(32), NEWTON_PLUS_PLUS).cycles
        assert t32 <= t16 <= t8

    def test_cycles_scale_with_rows(self):
        small = gemv_cost(_gemv(rows=64), CFG, NEWTON_PLUS_PLUS).cycles
        big = gemv_cost(_gemv(rows=640), CFG, NEWTON_PLUS_PLUS).cycles
        assert big > 5 * small

    def test_macs_conserved(self):
        gemv = _gemv(rows=100, k=200, n=33)
        cost = gemv_cost(gemv, CFG, NEWTON_PLUS_PLUS)
        assert cost.macs == gemv.macs

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.integers(1, 2000),
        k=st.integers(16, 4096),
        n=st.integers(1, 2048),
        nb=st.sampled_from([1, 2, 4]),
        hiding=st.booleans(),
        strided=st.booleans(),
    )
    def test_property_positive_and_conserving(self, rows, k, n, nb, hiding,
                                              strided):
        gemv = LoweredGemv(rows=rows, k=k, n=n,
                           contiguous_k=16 if strided else k, strided=strided)
        opts = PimOptimizations(num_gwrite_buffers=nb,
                                gwrite_latency_hiding=hiding,
                                strided_gwrite=False)
        cost = gemv_cost(gemv, CFG, opts)
        assert cost.cycles > 0
        assert cost.time_us > 0
        assert cost.macs == gemv.macs
        assert cost.activations >= 1
        # Every input element crosses the IO path at least once per
        # channel it is needed on.
        assert cost.gwrite_bytes >= rows * k * CFG.elem_bytes


class TestTileCost:
    def test_single_tile_stats(self):
        gemv = _gemv(rows=10, k=64, n=16)
        tiles = tile_over_channels(gemv, 16, "comp")
        cost = tile_cost(tiles[0], gemv, CFG, NEWTON_PLUS_PLUS)
        assert cost.macs == tiles[0].macs
        assert cost.readres_bytes == 10 * tiles[0].n * CFG.elem_bytes

    def test_one_activation_set_per_group(self):
        # Small filter slice (one DRAM row) still re-activates once per
        # vector group: the documented GWRITE-G_ACT-COMP-READRES order.
        gemv = _gemv(rows=1000, k=32, n=16)
        tiles = tile_over_channels(gemv, 16, "comp")
        cost = tile_cost(tiles[0], gemv, CFG, NEWTON_PLUS)
        assert cost.activations == 1000  # nb=1: one group per vector

    def test_multi_buffer_divides_activations_by_four(self):
        gemv = _gemv(rows=1000, k=32, n=16)
        tiles = tile_over_channels(gemv, 16, "comp")
        one = tile_cost(tiles[0], gemv, CFG, PimOptimizations())
        four = tile_cost(tiles[0], gemv, CFG,
                         PimOptimizations(num_gwrite_buffers=4))
        assert four.activations * 4 == one.activations

    def test_multirow_reactivates_per_group(self):
        gemv = _gemv(rows=64, k=2048, n=2048)
        tiles = tile_over_channels(gemv, 16, "comp")
        opts = PimOptimizations(num_gwrite_buffers=1)
        cost = tile_cost(tiles[0], gemv, CFG, opts)
        assert cost.activations > 64
